module Word = Hppa_word.Word

type reduced = {
  preheader : Loop_ir.stmt list;
  loop : Loop_ir.t;
  multiplies_removed : int;
}

let temp_prefix = "$str"

(* What a reduced multiplication multiplies the counter by. *)
type multiplier = Mconst of int32 | Mvar of string

(* A constant multiplier whose selected inline chain is at or below the
   threshold is not worth an induction temporary. *)
let cheap_multiplier ~cheap_threshold c =
  cheap_threshold > 0
  && (match
        Hppa_plan.Selector.choose
          ~ctx:(Hppa_plan.Strategy.compiler ())
          (Hppa_plan.Strategy.mul_const c)
      with
     | Ok choice ->
         choice.Hppa_plan.Selector.chosen.Hppa_plan.Strategy.name
         = "mul_const_chain"
         && choice.Hppa_plan.Selector.cost.Hppa_plan.Strategy.score
            <= cheap_threshold
     | Error _ -> false)

let reduce ?(cheap_threshold = 0) (l : Loop_ir.t) =
  (match Loop_ir.validate l with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Strength.reduce: " ^ msg));
  let assigned =
    List.map (fun (Loop_ir.Assign (v, _)) -> v) l.body
  in
  (* A variable multiplier must be loop-invariant. *)
  let invariant v = v <> l.counter && not (List.mem v assigned) in
  let temps = ref [] (* (name, multiplier) newest first *) in
  let removed = ref 0 in
  let temp_for m =
    match List.find_opt (fun (_, m') -> m = m') !temps with
    | Some (name, _) -> name
    | None ->
        let name = Printf.sprintf "%s%d" temp_prefix (List.length !temps) in
        temps := (name, m) :: !temps;
        name
  in
  let rec rewrite (e : Expr.t) : Expr.t =
    match e with
    | Mul (Var i, Const c) | Mul (Const c, Var i)
      when i = l.counter && not (cheap_multiplier ~cheap_threshold c) ->
        incr removed;
        Var (temp_for (Mconst c))
    | Mul (Var a, Var b)
      when (a = l.counter && invariant b) || (b = l.counter && invariant a) ->
        let n = if a = l.counter then b else a in
        incr removed;
        Var (temp_for (Mvar n))
    | Var _ | Const _ -> e
    | Add (a, b) -> Add (rewrite a, rewrite b)
    | Sub (a, b) -> Sub (rewrite a, rewrite b)
    | Mul (a, b) -> Mul (rewrite a, rewrite b)
    | Div (a, b) -> Div (rewrite a, rewrite b)
    | Rem (a, b) -> Rem (rewrite a, rewrite b)
    | Neg a -> Neg (rewrite a)
  in
  let body =
    List.map (fun (Loop_ir.Assign (v, e)) -> Loop_ir.Assign (v, rewrite e)) l.body
  in
  let temps = List.rev !temps in
  let init_of = function
    | Mconst c -> Expr.Const (Word.mul_lo l.start c)
    | Mvar n -> Expr.Mul (Const l.start, Var n)
  in
  let bump_of = function
    | Mconst c -> Expr.Const (Word.mul_lo l.step c)
    | Mvar n when Word.equal l.step 1l -> Expr.Var n
    | Mvar n -> Expr.Mul (Const l.step, Var n)
  in
  let preheader =
    List.map (fun (name, m) -> Loop_ir.Assign (name, init_of m)) temps
  in
  let bumps =
    List.map
      (fun (name, m) -> Loop_ir.Assign (name, Expr.Add (Var name, bump_of m)))
      temps
  in
  {
    preheader;
    loop = { l with body = body @ bumps };
    multiplies_removed = !removed;
  }

let eval_reduced ?fuel r ~init =
  let env0 = Hashtbl.create 16 in
  List.iter (fun (v, x) -> Hashtbl.replace env0 v x) init;
  let lookup v =
    match Hashtbl.find_opt env0 v with
    | Some x -> x
    | None -> invalid_arg ("Strength.eval_reduced: unbound variable " ^ v)
  in
  List.iter
    (fun (Loop_ir.Assign (v, e)) -> Hashtbl.replace env0 v (Expr.eval ~env:lookup e))
    r.preheader;
  let init' = Hashtbl.fold (fun v x acc -> (v, x) :: acc) env0 [] in
  Loop_ir.eval ?fuel r.loop ~init:init'
  |> List.filter (fun (v, _) ->
         not (String.length v >= 4 && String.sub v 0 4 = temp_prefix))
