module Word = Hppa_word.Word
module U128 = Hppa_word.U128

type t = {
  y : int32;
  s : int;
  a : int64;
  r : int64;
  b : int64;
  coverage : int64;
}

let derive ?(range = 0x1_0000_0000L) y =
  if Word.le_u y 1l || not (Word.is_odd y) then
    invalid_arg "Div_magic.derive: divisor must be odd and >= 3";
  let y64 = Word.to_int64_u y in
  let rec go s =
    if s > 62 then invalid_arg "Div_magic.derive: no suitable z found"
    else
      let z = Int64.shift_left 1L s in
      let a = Int64.div z y64 in
      let r = Int64.sub z (Int64.mul a y64) in
      if r = 0L then { y; s; a; r; b = 0L; coverage = Int64.max_int }
      else
        let b = Int64.add a (Int64.sub r 1L) in
        let k = Int64.div b r in
        let coverage = Int64.mul (Int64.add k 1L) y64 in
        if coverage >= range then { y; s; a; r; b; coverage } else go (s + 1)
  in
  go 32

let eval t x =
  let ax = U128.mul_64_64 t.a (Word.to_int64_u x) in
  let v = U128.add ax (U128.of_int64 t.b) in
  let q = U128.shift_right v t.s in
  assert (U128.fits_int64 q);
  Word.of_int64 (U128.to_int64 q)

let figure6 () = List.map (fun y -> derive (Int32.of_int y)) [ 3; 5; 7; 9; 11; 13; 15; 17; 19 ]

let pp ppf t =
  Format.fprintf ppf "y=%ld  z=2^%d  r=%Ld  a=%LX  (K+1)y=%LX" t.y t.s t.r t.a
    t.coverage
