(* Golden W32 lowering output, captured from the pre-width-refactor
   compiler. The width-polymorphic refactor must keep W32 lowering
   byte-identical: these strings are the pinned disassembly of
   representative [Lower.compile] / [Lower_loop.compile_reduced]
   outputs, and the tests below re-render the same programs and demand
   exact equality. Do not regenerate these from current output to make
   a failure go away -- a mismatch means W32 code generation changed. *)

open Hppa_compiler

let render (src : Program.source) =
  Format.asprintf "%a" Program.pp_source src ^ "\n"

let expected_e1 =
  "f:\n        ldo 0(r26), r3\n        ldo 0(r25), r4\n        zdep r3, 5, 27, r7\n        sub r7, r3, r7\n        sh2add r7, r3, r7\n        sh2add r7, r7, r7\n        ldo 0(r4), r26\n        bl divi_c7, r31\n        ldo 0(r28), r8\n        add r7, r8, r8\n        ldo 0(r8), r28\n        bv r0(r2)\n"

let expected_e2 =
  "g:\n        ldo 0(r26), r3\n        ldo 0(r25), r4\n        ldo 0(r3), r26\n        bl remi_c10, r31\n        ldo 0(r28), r7\n        ldo 0(r3), r26\n        ldo 0(r4), r25\n        bl mulI, r31\n        ldo 0(r28), r8\n        sub r7, r8, r8\n        ldo 0(r8), r28\n        bv r0(r2)\nremi_c10:\n        ldo 0(r26), r1\n        comclr,>= r26, r0, r0\n        sub r0, r26, r26\n        extru r26, 1, 31, r26\n        addi 1, r26, r20\n        addc r0, r0, r19\n        shd r19, r20, 17, r21\n        zdep r20, 15, 17, r22\n        shd r21, r22, 31, r29\n        sh1add r22, r20, r28\n        addc r29, r19, r29\n        shd r29, r28, 24, r19\n        zdep r28, 8, 24, r20\n        add r20, r28, r20\n        addc r19, r29, r19\n        shd r19, r20, 28, r21\n        zdep r20, 4, 28, r22\n        add r22, r20, r20\n        addc r21, r19, r19\n        shd r19, r20, 31, r21\n        sh1add r20, r20, r22\n        addc r21, r19, r21\n        ldo 0(r21), r28\n        zdep r28, 1, 31, r29\n        sh3add r28, r29, r29\n        ldo 0(r1), r19\n        comclr,>= r1, r0, r0\n        sub r0, r19, r19\n        sub r19, r29, r28\n        comclr,>= r1, r0, r0\n        sub r0, r28, r28\n        bv r0(r31)\n"

let expected_e3 =
  "h:\n        ldo 0(r26), r3\n        ldo 0(r25), r4\n        ldo 0(r3), r26\n        ldo 0(r4), r25\n        bl divI_small, r31\n        ldo 0(r28), r7\n        ldo 0(r7), r28\n        bv r0(r2)\n"

let expected_e4 =
  "o:\n        ldo 0(r26), r3\n        sh1add,o r3, r3, r7\n        sh2add,o r7, r7, r7\n        ldo 0(r7), r28\n        bv r0(r2)\n"

let expected_loop =
  "k:\n        ldo 0(r0), r3\n        ldo 0(r0), r4\n        ldo 0(r0), r5\n        ldo 0(r0), r7\n        ldo 0(r7), r4\n        ldo 0(r0), r3\n        ldo 10(r0), r6\nk$top:\n        comb,>= r3, r6, k$exit\n        add r5, r4, r7\n        ldo 0(r7), r5\n        ldo 15(r0), r7\n        add r4, r7, r7\n        ldo 0(r7), r4\n        addi 1, r3, r3\n        b k$top\nk$exit:\n        ldo 0(r5), r28\n        bv r0(r2)\n"

let check name expected actual () =
  Alcotest.(check string) name expected (render actual)

let case_e1 () =
  let e = Expr.Add (Mul (Var "x", Const 625l), Div (Var "y", Const 7l)) in
  let u = Lower.compile ~entry:"f" ~params:[ "x"; "y" ] e in
  check "mul chain + signed divide" expected_e1 u.Lower.source ()

let case_e2 () =
  let e = Expr.Sub (Rem (Var "x", Const 10l), Mul (Var "x", Var "y")) in
  let u = Lower.compile ~entry:"g" ~params:[ "x"; "y" ] e in
  check "rem plan + variable multiply" expected_e2 u.Lower.source ()

let case_e3 () =
  let e = Expr.Div (Var "x", Var "y") in
  let u =
    Lower.compile ~entry:"h" ~small_divisor_dispatch:true ~params:[ "x"; "y" ]
      e
  in
  check "small-divisor dispatch divide" expected_e3 u.Lower.source ()

let case_e4 () =
  let e = Expr.Mul (Var "x", Const 15l) in
  let u = Lower.compile ~entry:"o" ~trap_overflow:true ~params:[ "x" ] e in
  check "trap-overflow mul chain" expected_e4 u.Lower.source ()

let case_loop () =
  let l =
    Loop_ir.
      {
        counter = "i";
        start = 0l;
        stop = 10l;
        step = 1l;
        body =
          [ Assign ("j", Expr.Add (Var "j", Expr.Mul (Var "i", Const 15l))) ];
      }
  in
  let r = Strength.reduce l in
  let u = Lower_loop.compile_reduced ~entry:"k" ~inputs:[] ~result:"j" r in
  check "strength-reduced loop" expected_loop u.Lower_loop.source ()

let suite =
  [
    ( "compiler:golden-w32",
      [
        Alcotest.test_case "e1 chain+div" `Quick case_e1;
        Alcotest.test_case "e2 rem+mulI" `Quick case_e2;
        Alcotest.test_case "e3 dispatch" `Quick case_e3;
        Alcotest.test_case "e4 overflow chain" `Quick case_e4;
        Alcotest.test_case "loop reduced" `Quick case_loop;
      ] );
  ]
