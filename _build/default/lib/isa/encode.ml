(* Field packing works in a 32-bit OCaml int built from slices, converted to
   int32 at the end. Layout per major opcode (bit 31 = MSB holds the top of
   the 6-bit opcode):

     op:6 | fields...                                     (LSB-first below)

   0  Alu      t:5 b:5 a:5 aluop:4 ov:1
   1  Ds       t:5 b:5 a:5
   2  Addi     t:5 a:5 imm:14 ov:1
   3  Subi     t:5 a:5 imm:11 ov:1
   4  Comclr   t:5 b:5 a:5 cond:4
   5  Comiclr  t:5 a:5 imm:11 cond:4
   6  Extr     t:5 r:5 pos:5 len1:5 signed:1 cond:4  (len1 = len - 1)
   7  Zdep     t:5 r:5 pos:5 len1:5
   8  Shd      t:5 b:5 a:5 sa:5
   9  Ldil     t:5 imm:21                          (imm = value >> 11)
   10 Ldo      t:5 base:5 imm:14
   11 Ldw      t:5 base:5 disp:14
   12 Stw      r:5 base:5 disp:14
   13 Ldaddr   t:5 disp:17                         (PC-relative)
   14 Comb     disp:11 b:5 a:5 cond:4 n:1
   15 Comib    disp:11 a:5 imm:5 cond:4 n:1
   16 Addib    disp:11 a:5 imm:5 cond:4 n:1
   17 B        disp:17 n:1
   18 Bl       t:5 disp:17 n:1
   19 Blr      t:5 x:5 n:1
   20 Bv       base:5 x:5 n:1
   21 Break    code:5
   22 Nop
*)

let ( let* ) = Result.bind

type packer = { mutable acc : int; mutable pos : int }

let packer op =
  let p = { acc = 0; pos = 0 } in
  p.acc <- op lsl 26;
  p

let put p width v =
  assert (v >= 0 && v < 1 lsl width);
  p.acc <- p.acc lor (v lsl p.pos);
  p.pos <- p.pos + width;
  assert (p.pos <= 26)

let put_signed name p width v =
  let bound = 1 lsl (width - 1) in
  if v < -bound || v >= bound then
    Error (Printf.sprintf "%s: value %d exceeds %d-bit signed field" name v width)
  else (
    put p width (v land ((1 lsl width) - 1));
    Ok ())

let finish p = Int32.of_int p.acc

let cond_code c =
  let rec index i = function
    | [] -> assert false
    | x :: rest -> if Cond.equal x c then i else index (i + 1) rest
  in
  index 0 Cond.all

let cond_of_code i =
  match List.nth_opt Cond.all i with
  | Some c -> Ok c
  | None -> Error (Printf.sprintf "bad condition code %d" i)

let alu_code : Insn.alu -> int = function
  | Add -> 0
  | Addc -> 1
  | Sub -> 2
  | Subb -> 3
  | Shadd k -> 3 + k
  | And -> 7
  | Or -> 8
  | Xor -> 9
  | Andcm -> 10

let alu_of_code = function
  | 0 -> Ok Insn.Add
  | 1 -> Ok Insn.Addc
  | 2 -> Ok Insn.Sub
  | 3 -> Ok Insn.Subb
  | 4 | 5 | 6 as k -> Ok (Insn.Shadd (k - 3))
  | 7 -> Ok Insn.And
  | 8 -> Ok Insn.Or
  | 9 -> Ok Insn.Xor
  | 10 -> Ok Insn.Andcm
  | c -> Error (Printf.sprintf "bad ALU code %d" c)

let reg r = Reg.to_int r
let bool b = if b then 1 else 0

let encode ~addr (i : int Insn.t) =
  let rel target = target - addr in
  match i with
  | Alu { op; a; b; t; trap_ov } ->
      let p = packer 0 in
      put p 5 (reg t); put p 5 (reg b); put p 5 (reg a);
      put p 4 (alu_code op); put p 1 (bool trap_ov);
      Ok (finish p)
  | Ds { a; b; t } ->
      let p = packer 1 in
      put p 5 (reg t); put p 5 (reg b); put p 5 (reg a);
      Ok (finish p)
  | Addi { imm; a; t; trap_ov } ->
      let p = packer 2 in
      put p 5 (reg t); put p 5 (reg a);
      let* () = put_signed "addi" p 14 (Int32.to_int imm) in
      put p 1 (bool trap_ov);
      Ok (finish p)
  | Subi { imm; a; t; trap_ov } ->
      let p = packer 3 in
      put p 5 (reg t); put p 5 (reg a);
      let* () = put_signed "subi" p 11 (Int32.to_int imm) in
      put p 1 (bool trap_ov);
      Ok (finish p)
  | Comclr { cond; a; b; t } ->
      let p = packer 4 in
      put p 5 (reg t); put p 5 (reg b); put p 5 (reg a);
      put p 4 (cond_code cond);
      Ok (finish p)
  | Comiclr { cond; imm; a; t } ->
      let p = packer 5 in
      put p 5 (reg t); put p 5 (reg a);
      let* () = put_signed "comiclr" p 11 (Int32.to_int imm) in
      put p 4 (cond_code cond);
      Ok (finish p)
  | Extr { signed; r; pos; len; t; cond } ->
      let p = packer 6 in
      put p 5 (reg t); put p 5 (reg r); put p 5 pos; put p 5 (len - 1);
      put p 1 (bool signed); put p 4 (cond_code cond);
      Ok (finish p)
  | Zdep { r; pos; len; t } ->
      let p = packer 7 in
      put p 5 (reg t); put p 5 (reg r); put p 5 pos; put p 5 (len - 1);
      Ok (finish p)
  | Shd { a; b; sa; t } ->
      let p = packer 8 in
      put p 5 (reg t); put p 5 (reg b); put p 5 (reg a); put p 5 sa;
      Ok (finish p)
  | Ldil { imm; t } ->
      let p = packer 9 in
      put p 5 (reg t);
      put p 21 (Int32.to_int (Int32.shift_right_logical imm 11));
      Ok (finish p)
  | Ldo { imm; base; t } ->
      let p = packer 10 in
      put p 5 (reg t); put p 5 (reg base);
      let* () = put_signed "ldo" p 14 (Int32.to_int imm) in
      Ok (finish p)
  | Ldw { disp; base; t } ->
      let p = packer 11 in
      put p 5 (reg t); put p 5 (reg base);
      let* () = put_signed "ldw" p 14 (Int32.to_int disp) in
      Ok (finish p)
  | Stw { r; disp; base } ->
      let p = packer 12 in
      put p 5 (reg r); put p 5 (reg base);
      let* () = put_signed "stw" p 14 (Int32.to_int disp) in
      Ok (finish p)
  | Ldaddr { target; t } ->
      let p = packer 13 in
      put p 5 (reg t);
      let* () = put_signed "ldaddr" p 17 (rel target) in
      Ok (finish p)
  | Comb { cond; a; b; target; n } ->
      let p = packer 14 in
      let* () = put_signed "comb" p 11 (rel target) in
      put p 5 (reg b); put p 5 (reg a); put p 4 (cond_code cond);
      put p 1 (bool n);
      Ok (finish p)
  | Comib { cond; imm; a; target; n } ->
      let p = packer 15 in
      let* () = put_signed "comib" p 11 (rel target) in
      put p 5 (reg a);
      let* () = put_signed "comib-imm" p 5 (Int32.to_int imm) in
      put p 4 (cond_code cond);
      put p 1 (bool n);
      Ok (finish p)
  | Addib { cond; imm; a; target; n } ->
      let p = packer 16 in
      let* () = put_signed "addib" p 11 (rel target) in
      put p 5 (reg a);
      let* () = put_signed "addib-imm" p 5 (Int32.to_int imm) in
      put p 4 (cond_code cond);
      put p 1 (bool n);
      Ok (finish p)
  | B { target; n } ->
      let p = packer 17 in
      let* () = put_signed "b" p 17 (rel target) in
      put p 1 (bool n);
      Ok (finish p)
  | Bl { target; t; n } ->
      let p = packer 18 in
      put p 5 (reg t);
      let* () = put_signed "bl" p 17 (rel target) in
      put p 1 (bool n);
      Ok (finish p)
  | Blr { x; t; n } ->
      let p = packer 19 in
      put p 5 (reg t); put p 5 (reg x); put p 1 (bool n);
      Ok (finish p)
  | Bv { x; base; n } ->
      let p = packer 20 in
      put p 5 (reg base); put p 5 (reg x); put p 1 (bool n);
      Ok (finish p)
  | Break { code } ->
      let p = packer 21 in
      put p 5 code;
      Ok (finish p)
  | Nop -> Ok (finish (packer 22))

type unpacker = { word : int; mutable upos : int }

let take u width =
  let v = (u.word lsr u.upos) land ((1 lsl width) - 1) in
  u.upos <- u.upos + width;
  v

let take_signed u width =
  let v = take u width in
  if v land (1 lsl (width - 1)) <> 0 then v - (1 lsl width) else v

let take_reg u = Reg.of_int (take u 5)

let decode ~addr (w : int32) =
  let word = Int32.to_int w land 0xffff_ffff in
  let u = { word; upos = 0 } in
  let abs disp = addr + disp in
  let op = (word lsr 26) land 0x3f in
  match op with
  | 0 ->
      let t = take_reg u in let b = take_reg u in let a = take_reg u in
      let* aluop = alu_of_code (take u 4) in
      let trap_ov = take u 1 = 1 in
      Ok (Insn.Alu { op = aluop; a; b; t; trap_ov })
  | 1 ->
      let t = take_reg u in let b = take_reg u in let a = take_reg u in
      Ok (Insn.Ds { a; b; t })
  | 2 ->
      let t = take_reg u in let a = take_reg u in
      let imm = Int32.of_int (take_signed u 14) in
      Ok (Insn.Addi { imm; a; t; trap_ov = take u 1 = 1 })
  | 3 ->
      let t = take_reg u in let a = take_reg u in
      let imm = Int32.of_int (take_signed u 11) in
      Ok (Insn.Subi { imm; a; t; trap_ov = take u 1 = 1 })
  | 4 ->
      let t = take_reg u in let b = take_reg u in let a = take_reg u in
      let* cond = cond_of_code (take u 4) in
      Ok (Insn.Comclr { cond; a; b; t })
  | 5 ->
      let t = take_reg u in let a = take_reg u in
      let imm = Int32.of_int (take_signed u 11) in
      let* cond = cond_of_code (take u 4) in
      Ok (Insn.Comiclr { cond; imm; a; t })
  | 6 ->
      let t = take_reg u in let r = take_reg u in
      let pos = take u 5 in let len = take u 5 + 1 in
      let signed = take u 1 = 1 in
      let* cond = cond_of_code (take u 4) in
      Ok (Insn.Extr { signed; r; pos; len; t; cond })
  | 7 ->
      let t = take_reg u in let r = take_reg u in
      let pos = take u 5 in let len = take u 5 + 1 in
      Ok (Insn.Zdep { r; pos; len; t })
  | 8 ->
      let t = take_reg u in let b = take_reg u in let a = take_reg u in
      let sa = take u 5 in
      Ok (Insn.Shd { a; b; sa; t })
  | 9 ->
      let t = take_reg u in
      let imm = Int32.shift_left (Int32.of_int (take u 21)) 11 in
      Ok (Insn.Ldil { imm; t })
  | 10 ->
      let t = take_reg u in let base = take_reg u in
      Ok (Insn.Ldo { imm = Int32.of_int (take_signed u 14); base; t })
  | 11 ->
      let t = take_reg u in let base = take_reg u in
      Ok (Insn.Ldw { disp = Int32.of_int (take_signed u 14); base; t })
  | 12 ->
      let r = take_reg u in let base = take_reg u in
      Ok (Insn.Stw { r; disp = Int32.of_int (take_signed u 14); base })
  | 13 ->
      let t = take_reg u in
      Ok (Insn.Ldaddr { target = abs (take_signed u 17); t })
  | 14 ->
      let disp = take_signed u 11 in
      let b = take_reg u in let a = take_reg u in
      let* cond = cond_of_code (take u 4) in
      let n = take u 1 = 1 in
      Ok (Insn.Comb { cond; a; b; target = abs disp; n })
  | 15 ->
      let disp = take_signed u 11 in
      let a = take_reg u in
      let imm = Int32.of_int (take_signed u 5) in
      let* cond = cond_of_code (take u 4) in
      let n = take u 1 = 1 in
      Ok (Insn.Comib { cond; imm; a; target = abs disp; n })
  | 16 ->
      let disp = take_signed u 11 in
      let a = take_reg u in
      let imm = Int32.of_int (take_signed u 5) in
      let* cond = cond_of_code (take u 4) in
      let n = take u 1 = 1 in
      Ok (Insn.Addib { cond; imm; a; target = abs disp; n })
  | 17 ->
      let disp = take_signed u 17 in
      let n = take u 1 = 1 in
      Ok (Insn.B { target = abs disp; n })
  | 18 ->
      let t = take_reg u in
      let disp = take_signed u 17 in
      let n = take u 1 = 1 in
      Ok (Insn.Bl { target = abs disp; t; n })
  | 19 ->
      let t = take_reg u in let x = take_reg u in
      let n = take u 1 = 1 in
      Ok (Insn.Blr { x; t; n })
  | 20 ->
      let base = take_reg u in let x = take_reg u in
      let n = take u 1 = 1 in
      Ok (Insn.Bv { x; base; n })
  | 21 -> Ok (Insn.Break { code = take u 5 })
  | 22 -> Ok Insn.Nop
  | op -> Error (Printf.sprintf "bad opcode %d" op)

let encode_program (p : Program.resolved) =
  let out = Array.make (Array.length p.code) 0l in
  let rec go i =
    if i = Array.length p.code then Ok out
    else
      let* w = encode ~addr:i p.code.(i) in
      out.(i) <- w;
      go (i + 1)
  in
  go 0

let decode_program words =
  let out = Array.make (Array.length words) (Insn.Nop : int Insn.t) in
  let rec go i =
    if i = Array.length words then Ok out
    else
      let* insn = decode ~addr:i words.(i) in
      out.(i) <- insn;
      go (i + 1)
  in
  go 0
