(** Binary program images.

    A trivial container for encoded programs so the tool chain closes the
    loop: assemble ([hppa-run]/[Asm]) → encode ({!Encode}) → store →
    disassemble ([hppa-dis]) → run. Layout: the 5-byte magic ["HPPA1"],
    a 32-bit big-endian instruction count, then one 32-bit big-endian
    word per instruction. Symbols are not stored (branch targets are
    PC-relative in the encoding, so the image is position-independent). *)

val magic : string

val to_bytes : Program.resolved -> (bytes, string) result
(** Encode and pack; fails on instructions whose fields exceed the binary
    encoding (see {!Encode.encode}). *)

val of_bytes : bytes -> (int Insn.t array, string) result
(** Unpack and decode; fails on a bad magic, a truncated image or invalid
    opcodes. *)

val disassemble : int Insn.t array -> string
(** A listing with addresses, matching [hppa-dis] output. *)
