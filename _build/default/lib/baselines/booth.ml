module Word = Hppa_word.Word

let steps = 16

(* Radix-4 Booth: examine bits (2i+1, 2i, 2i-1) of the multiplier; the
   recoded digit is b_{2i-1} + b_{2i} - 2*b_{2i+1}, in {-2..2}. The
   accumulator is 64-bit; each step adds digit * multiplicand shifted by
   2i. Signed semantics fall out of treating the top recoded digit's
   weight as negative, which the formula already does. *)
let multiply mcand mpy =
  let mcand64 = Word.to_int64_s mcand in
  let acc = ref 0L in
  for i = 0 to steps - 1 do
    let bit k =
      if k < 0 then 0
      else if k > 31 then if Word.is_neg mpy then 1 else 0
      else if Word.bit mpy k then 1
      else 0
    in
    let digit = bit ((2 * i) - 1) + bit (2 * i) - (2 * bit ((2 * i) + 1)) in
    acc :=
      Int64.add !acc
        (Int64.shift_left (Int64.mul (Int64.of_int digit) mcand64) (2 * i))
  done;
  ( Int64.to_int32 (Int64.shift_right_logical !acc 32),
    Int64.to_int32 !acc )

let cycles () = steps + 4
