module Word = Hppa_word.Word
module Plan = Hppa_plan.Strategy
module Selector = Hppa_plan.Selector

type t = {
  entry : string;
  params : string list;
  source : Program.source;
  millicode_calls : int;
  inline_multiplies : int;
}

let inline_mul_threshold = 6

exception Unsupported of string

(* Parameters live in r3..r6, expression temporaries in r7..r18; both
   ranges survive millicode calls (the library touches only r1, r19..r31
   and the argument/result registers). *)
let param_regs = [ 3; 4; 5; 6 ] |> List.map Reg.of_int
let temp_regs = List.init 12 (fun i -> Reg.of_int (7 + i))

(* Scratch registers handed to inline chains: the result temp first, then
   caller-saved scratch the chains may clobber freely. *)
let chain_scratch = [ Reg.t2; Reg.t3; Reg.t4; Reg.t5 ]

type state = {
  b : Builder.t;
  vars : (string * Reg.t) list;
  mutable free : Reg.t list;
  mutable millicode_calls : int;
  mutable inline_multiplies : int;
  mutable plans : (string * Program.source) list; (* per-constant routines *)
  pool_size : int;  (** temporaries available at state creation *)
  trap_overflow : bool;
  small_divisor_dispatch : bool;
  require_certified : bool;
}

(* Register exhaustion names the sub-expression being lowered and the
   pool that ran dry, so "expression needs too many registers" is
   actionable. *)
let out_of_registers ~what ~pool e =
  raise
    (Unsupported
       (Format.asprintf
          "out of registers lowering %a: all %d %s temporaries are live"
          Expr.pp e pool what))

let alloc st e =
  match st.free with
  | r :: rest ->
      st.free <- rest;
      r
  | [] -> out_of_registers ~what:"single-word" ~pool:st.pool_size e

(* Anything in the callee-saved range can serve as an expression
   temporary; variable registers are simply never released. *)
let callee_saved = List.init 16 (fun i -> Reg.of_int (3 + i))


let release st r =
  let is_var = List.exists (fun (_, r') -> Reg.equal r r') st.vars in
  let is_pool = List.exists (Reg.equal r) callee_saved in
  if is_pool && not is_var then st.free <- r :: st.free

(* The signed-divide routine for a constant: divisors 1..19 reuse the
   routines already resident in the millicode library (Div_small links
   them); anything else is generated into this unit once. *)
let divide_entry st c =
  if Word.lt_s 0l c && Word.to_int_s c < Div_small.threshold then
    Printf.sprintf "divi_c%ld" c
  else begin
    let plan = Div_const.plan_signed c in
    if not (List.mem_assoc plan.entry st.plans) then
      st.plans <- (plan.entry, plan.source) :: st.plans;
    plan.entry
  end

let call st target =
  st.millicode_calls <- st.millicode_calls + 1;
  Builder.insn st.b (Emit.bl target Reg.mrp)

(* Every non-trivial multiply/divide/remainder is arbitrated by the
   strategy selector (lib/plan) under the compiler's context; the chosen
   strategy is then mapped onto this module's emission idioms (inline
   chain, resident small-divisor routine, per-unit constant plan, or
   millicode call), so the selector decides and the generated code stays
   in the compiler's conventions. *)
let selector_ctx st =
  {
    (Plan.compiler ~small_divisor_dispatch:st.small_divisor_dispatch ()) with
    Plan.inline_mul_threshold;
  }

let choose st req =
  Selector.choose ~ctx:(selector_ctx st)
    ~require_certified:st.require_certified req

(* The call-through strategies carry their millicode entry in the
   emission detail; fall back to the historical target if selection ever
   fails (it cannot for well-formed requests). *)
let millicode_target choice ~default =
  match choice with
  | Ok c -> (
      match c.Selector.emission.Plan.detail with
      | Plan.Millicode m -> m
      | Plan.Mul_plan _ | Plan.Div_plan _ | Plan.Pair_chain _ -> default)
  | Error _ -> default

(* Inline a multiply-by-constant chain: product of [src] by the chain's
   target into a fresh temp. *)
let inline_chain st ~ctx ~negate chain src =
  st.inline_multiplies <- st.inline_multiplies + 1;
  let dst = alloc st ctx in
  let pool = Array.of_list (dst :: chain_scratch) in
  let _info =
    Chain_codegen.body_at ~overflow:st.trap_overflow ~negate ~src ~pool chain
      st.b
  in
  dst

let rec emit st (e : Expr.t) : Reg.t =
  let ov = st.trap_overflow in
  let binop f a b =
    let ra = emit st a in
    let rb = emit st b in
    release st ra;
    release st rb;
    let t = alloc st e in
    Builder.insn st.b (f ra rb t);
    t
  in
  match e with
  | Var v -> (
      match List.assoc_opt v st.vars with
      | Some r -> r
      | None -> raise (Unsupported ("unbound variable " ^ v)))
  | Const c ->
      let t = alloc st e in
      Builder.insns st.b (Emit.ldi c t);
      t
  | Const64 _ ->
      raise
        (Unsupported
           (Format.asprintf
              "64-bit constant %a in a 32-bit lowering (compile with \
               width W64)"
              Expr.pp e))
  | Add (a, b) -> binop (Emit.add ~ov) a b
  | Sub (a, b) -> binop (Emit.sub ~ov) a b
  | Neg a ->
      let ra = emit st a in
      release st ra;
      let t = alloc st e in
      Builder.insn st.b (Emit.sub ~ov Reg.r0 ra t);
      t
  | Mul (Const c, a) | Mul (a, Const c) -> emit_mul_const st e a c
  | Mul (a, b) ->
      let target =
        millicode_target
          (choose st (Plan.mul_var ~trap_overflow:ov ()))
          ~default:(if ov then Millicode.muloI else Millicode.mulI)
      in
      emit_call2 st e a b target
  | Div (a, Const c) when not (Word.equal c 0l) ->
      let target = emit_div_const_entry st c in
      let ra = emit st a in
      Builder.insn st.b (Emit.copy ra Reg.arg0);
      release st ra;
      call st target;
      let t = alloc st e in
      Builder.insn st.b (Emit.copy Reg.ret0 t);
      t
  | Div (a, b) ->
      let target =
        millicode_target
          (choose st (Plan.div_var Plan.Signed))
          ~default:(if st.small_divisor_dispatch then "divI_small" else "divI")
      in
      emit_call2 st e a b target
  | Rem (a, Const c) when not (Word.equal c 0l) -> emit_rem_const st e a c
  | Rem (a, b) ->
      let target =
        millicode_target
          (choose st (Plan.rem_var Plan.Signed))
          ~default:"remI"
      in
      emit_call2 st e a b target

and emit_call2 st e a b target =
  let ra = emit st a in
  let rb = emit st b in
  Builder.insns st.b [ Emit.copy ra Reg.arg0; Emit.copy rb Reg.arg1 ];
  release st ra;
  release st rb;
  call st target;
  let t = alloc st e in
  Builder.insn st.b (Emit.copy Reg.ret0 t);
  t

and emit_mul_const st e a c =
  if Word.equal c 0l then begin
    (* Still evaluate a for faithfulness to side-effect-free semantics,
       then discard. *)
    let ra = emit st a in
    release st ra;
    let t = alloc st e in
    Builder.insn st.b (Emit.copy Reg.r0 t);
    t
  end
  else
    (* The selector inlines exactly when the chain strategy wins under
       the compiler context (chain found and within the inline
       threshold); the chosen emission carries that chain. *)
    let inline_choice =
      match choose st (Plan.mul_const ~trap_overflow:st.trap_overflow c) with
      | Ok choice -> (
          match
            (choice.Selector.chosen.Plan.name,
             choice.Selector.emission.Plan.detail)
          with
          | "mul_const_chain", Plan.Mul_plan { Mul_const.chain = Some chain; _ }
            ->
              Some chain
          | _ -> None)
      | Error _ -> None
    in
    match inline_choice with
    | Some chain ->
        let ra = emit st a in
        let t = inline_chain st ~ctx:e ~negate:(Word.is_neg c) chain ra in
        release st ra;
        t
    | None ->
        (* Millicode multiply with an immediate operand. *)
        let ra = emit st a in
        Builder.insn st.b (Emit.copy ra Reg.arg0);
        release st ra;
        Builder.insns st.b (Emit.ldi c Reg.arg1);
        call st (if st.trap_overflow then Millicode.muloI else Millicode.mulI);
        let t = alloc st e in
        Builder.insn st.b (Emit.copy Reg.ret0 t);
        t

and emit_div_const_entry st c =
  (* The selector arbitrates constant plan vs. general millicode; in
     compiled code both map onto [divide_entry]'s conventions (a
     fallback constant plan is itself a [divU] tail call, so the two
     strategies coincide), and divisors below the small-divisor
     threshold reuse the routines resident in the linked library. *)
  match choose st (Plan.div_const Plan.Signed c) with
  | Ok choice
    when choice.Selector.chosen.Plan.name = "div_const"
         && not
              (Word.lt_s 0l c && Word.to_int_s c < Div_small.threshold) -> (
      match choice.Selector.emission.Plan.detail with
      | Plan.Div_plan plan ->
          if not (List.mem_assoc plan.Div_const.entry st.plans) then
            st.plans <-
              (plan.Div_const.entry, plan.Div_const.source) :: st.plans;
          plan.Div_const.entry
      | _ -> divide_entry st c)
  | Ok _ | Error _ -> divide_entry st c

and emit_rem_const st e a c =
  (* x mod c through the dedicated remainder routine (which itself
     composes x - (x/c)*c with an inline multiply-back chain). The
     selector's constant-divide emission is that very plan. *)
  let plan =
    match choose st (Plan.rem_const Plan.Signed c) with
    | Ok
        {
          Selector.chosen = { Plan.name = "div_const"; _ };
          emission = { Plan.detail = Plan.Div_plan plan; _ };
          _;
        } ->
        plan
    | Ok _ | Error _ -> Div_const.plan_rem_signed c
  in
  if not (List.mem_assoc plan.Div_const.entry st.plans) then
    st.plans <- (plan.Div_const.entry, plan.Div_const.source) :: st.plans;
  let ra = emit st a in
  Builder.insn st.b (Emit.copy ra Reg.arg0);
  release st ra;
  call st plan.Div_const.entry;
  let t = alloc st e in
  Builder.insn st.b (Emit.copy Reg.ret0 t);
  t

let make_state ?(require_certified = false) b ~vars ~temps ~trap_overflow
    ~small_divisor_dispatch =
  {
    b;
    vars;
    free = temps;
    millicode_calls = 0;
    inline_multiplies = 0;
    plans = [];
    pool_size = List.length temps;
    trap_overflow;
    small_divisor_dispatch;
    require_certified;
  }

(* ------------------------------------------------------------------ *)
(* W64: the same lowering over (hi:lo) register pairs.

   Double-word values halve the register file: parameters live in the
   pairs (r3:r4), (r5:r6) (so at most 2 parameters), expression
   temporaries in the six pairs over r7..r18. Arithmetic lowers to PSW
   carry chains (ADD/ADDC, SUB/SUBB); multiplies and divides arbitrate
   through the same strategy selector between inline pair chains
   (w64_mul_const_chain) and the double-word millicode family. *)

type pair = Reg.t * Reg.t

let param_pairs = [ (Reg.of_int 3, Reg.of_int 4); (Reg.of_int 5, Reg.of_int 6) ]

let temp_pairs =
  List.init 6 (fun i -> (Reg.of_int (7 + (2 * i)), Reg.of_int (8 + (2 * i))))

(* Scratch pairs for inline pair chains: the destination first, then
   caller-saved pairs the chain may clobber (the arg2 pair is free
   between calls — chains make none). *)
let chain_scratch64 = [ (Reg.t2, Reg.t3); (Reg.t4, Reg.t5) ]

type state64 = {
  b64 : Builder.t;
  vars64 : (string * pair) list;
  mutable free64 : pair list;
  mutable millicode_calls64 : int;
  mutable inline_multiplies64 : int;
  pool_pairs : int;
  small_divisor_dispatch64 : bool;
  require_certified64 : bool;
}

let alloc64 st e =
  match st.free64 with
  | p :: rest ->
      st.free64 <- rest;
      p
  | [] -> out_of_registers ~what:"register-pair" ~pool:st.pool_pairs e

let callee_saved_pairs =
  List.init 8 (fun i -> (Reg.of_int (3 + (2 * i)), Reg.of_int (4 + (2 * i))))

let release64 st p =
  let is_var = List.exists (fun (_, p') -> p' = p) st.vars64 in
  let is_pool = List.mem p callee_saved_pairs in
  if is_pool && not is_var then st.free64 <- p :: st.free64

let call64 st target =
  st.millicode_calls64 <- st.millicode_calls64 + 1;
  Builder.insn st.b64 (Emit.bl target Reg.mrp)

let selector_ctx64 st =
  {
    (Plan.compiler ~small_divisor_dispatch:st.small_divisor_dispatch64 ()) with
    Plan.inline_mul_threshold;
  }

let choose64 st req =
  Selector.choose ~ctx:(selector_ctx64 st)
    ~require_certified:st.require_certified64 req

(* Load a dword constant into a pair. *)
let load_const64 st (hi, lo) c =
  Builder.insns st.b64
    (Emit.ldi (Int64.to_int32 (Int64.shift_right_logical c 32)) hi);
  Builder.insns st.b64 (Emit.ldi (Int64.to_int32 c) lo)

(* Move a pair into a (distinct) register pair. *)
let move_pair b (sh, sl) (dh, dl) =
  if not (Reg.equal sh dh) then Builder.insn b (Emit.copy sh dh);
  if not (Reg.equal sl dl) then Builder.insn b (Emit.copy sl dl)

let inline_chain64 st ~ctx ~negate chain src =
  st.inline_multiplies64 <- st.inline_multiplies64 + 1;
  let dst = alloc64 st ctx in
  let pool = Array.of_list ((dst :: chain_scratch64) @ [ (Reg.arg2, Reg.arg3) ]) in
  let _info = Chain_codegen.body_at_pair ~negate ~src ~pool chain st.b64 in
  dst

(* The double-word millicode call-throughs. [`Ret] results read
   (ret0:ret1) — quotients and remainders; [`Arg] reads (arg0:arg1) —
   the 128-bit product's low dword, i.e. the wrap-around 64-bit
   product. *)
let read_result64 st e where =
  let th, tl = alloc64 st e in
  (match where with
  | `Ret ->
      Builder.insns st.b64 [ Emit.copy Reg.ret0 th; Emit.copy Reg.ret1 tl ]
  | `Arg ->
      Builder.insns st.b64 [ Emit.copy Reg.arg0 th; Emit.copy Reg.arg1 tl ]);
  (th, tl)

let rec emit64 st (e : Expr.t) : pair =
  let binop2 flow fhigh a b =
    let ra = emit64 st a in
    let rb = emit64 st b in
    release64 st ra;
    release64 st rb;
    let th, tl = alloc64 st e in
    (* The low half writes first and never feeds the high half's reads,
       so the destination pair may reuse an operand pair. *)
    Builder.insn st.b64 (flow (snd ra) (snd rb) tl);
    Builder.insn st.b64 (fhigh (fst ra) (fst rb) th);
    (th, tl)
  in
  match e with
  | Var v -> (
      match List.assoc_opt v st.vars64 with
      | Some p -> p
      | None -> raise (Unsupported ("unbound variable " ^ v)))
  | Const c ->
      let p = alloc64 st e in
      load_const64 st p (Int64.of_int32 c);
      p
  | Const64 c ->
      let p = alloc64 st e in
      load_const64 st p c;
      p
  | Add (a, b) -> binop2 (fun x y t -> Emit.add x y t) (fun x y t -> Emit.addc x y t) a b
  | Sub (a, b) -> binop2 (fun x y t -> Emit.sub x y t) (fun x y t -> Emit.subb x y t) a b
  | Neg a ->
      let rh, rl = emit64 st a in
      release64 st (rh, rl);
      let th, tl = alloc64 st e in
      Builder.insn st.b64 (Emit.sub Reg.r0 rl tl);
      Builder.insn st.b64 (Emit.subb Reg.r0 rh th);
      (th, tl)
  | Mul (Const c, a) | Mul (a, Const c) ->
      emit64_mul_const st e a (Int64.of_int32 c)
  | Mul (Const64 c, a) | Mul (a, Const64 c) -> emit64_mul_const st e a c
  | Mul (a, b) ->
      let target =
        millicode_target (choose64 st (Plan.w64_mul Plan.Signed))
          ~default:"mulI128"
      in
      emit64_call2 st e a b target `Arg
  | Div (a, Const c) when not (Word.equal c 0l) ->
      emit64_div_const st e a (Int64.of_int32 c) Plan.w64_div_const "divI64w"
  | Div (a, Const64 c) when not (Int64.equal c 0L) ->
      emit64_div_const st e a c Plan.w64_div_const "divI64w"
  | Div (a, b) ->
      let target =
        millicode_target (choose64 st (Plan.w64_div Plan.Signed))
          ~default:"divI64w"
      in
      emit64_call2 st e a b target `Ret
  | Rem (a, Const c) when not (Word.equal c 0l) ->
      emit64_div_const st e a (Int64.of_int32 c) Plan.w64_rem_const "remI64w"
  | Rem (a, Const64 c) when not (Int64.equal c 0L) ->
      emit64_div_const st e a c Plan.w64_rem_const "remI64w"
  | Rem (a, b) ->
      let target =
        millicode_target (choose64 st (Plan.w64_rem Plan.Signed))
          ~default:"remI64w"
      in
      emit64_call2 st e a b target `Ret

and emit64_call2 st e a b target where =
  let ra = emit64 st a in
  let rb = emit64 st b in
  move_pair st.b64 ra (Reg.arg0, Reg.arg1);
  move_pair st.b64 rb (Reg.arg2, Reg.arg3);
  release64 st ra;
  release64 st rb;
  call64 st target;
  read_result64 st e where

and emit64_mul_const st e a c =
  if Int64.equal c 0L then begin
    let ra = emit64 st a in
    release64 st ra;
    let th, tl = alloc64 st e in
    Builder.insn st.b64 (Emit.copy Reg.r0 th);
    Builder.insn st.b64 (Emit.copy Reg.r0 tl);
    (th, tl)
  end
  else
    (* The selector arbitrates pair chain vs. mulI128 call-through under
       the compiler context; the chosen emission carries the chain. *)
    let choice = choose64 st (Plan.w64_mul_const c) in
    let inline_chain_of =
      match choice with
      | Ok ch -> (
          match
            (ch.Selector.chosen.Plan.name, ch.Selector.emission.Plan.detail)
          with
          | "w64_mul_const_chain", Plan.Pair_chain chain -> Some chain
          | _ -> None)
      | Error _ -> None
    in
    match inline_chain_of with
    | Some chain ->
        let ra = emit64 st a in
        let t =
          inline_chain64 st ~ctx:e ~negate:(Int64.compare c 0L < 0) chain ra
        in
        release64 st ra;
        t
    | None ->
        let target = millicode_target choice ~default:"mulI128" in
        let ra = emit64 st a in
        move_pair st.b64 ra (Reg.arg0, Reg.arg1);
        release64 st ra;
        load_const64 st (Reg.arg2, Reg.arg3) c;
        call64 st target;
        read_result64 st e `Arg

and emit64_div_const st e a c req_of default =
  let target = millicode_target (choose64 st (req_of Plan.Signed c)) ~default in
  let ra = emit64 st a in
  move_pair st.b64 ra (Reg.arg0, Reg.arg1);
  release64 st ra;
  load_const64 st (Reg.arg2, Reg.arg3) c;
  call64 st target;
  read_result64 st e `Ret

let make_state64 ?(require_certified = false) b ~vars ~temps
    ~small_divisor_dispatch =
  {
    b64 = b;
    vars64 = vars;
    free64 = temps;
    millicode_calls64 = 0;
    inline_multiplies64 = 0;
    pool_pairs = List.length temps;
    small_divisor_dispatch64 = small_divisor_dispatch;
    require_certified64 = require_certified;
  }

let compile32 ?entry ~trap_overflow ~small_divisor_dispatch ?require_certified
    ~params expr =
  let entry = Option.value entry ~default:"proc" in
  if List.length params > List.length param_regs then
    raise
      (Unsupported
         (Printf.sprintf "%d parameters exceed the 4 argument registers"
            (List.length params)));
  let b = Builder.create ~prefix:entry () in
  Builder.label b entry;
  let vars = List.mapi (fun i v -> (v, List.nth param_regs i)) params in
  (* Move incoming arguments out of the way of millicode calls. *)
  List.iteri
    (fun i (_, r) ->
      Builder.insn b (Emit.copy (List.nth [ Reg.arg0; Reg.arg1; Reg.arg2; Reg.arg3 ] i) r))
    vars;
  let st =
    make_state ?require_certified b ~vars ~temps:temp_regs ~trap_overflow
      ~small_divisor_dispatch
  in
  let result = emit st expr in
  Builder.insn b (Emit.copy result Reg.ret0);
  Builder.insn b Emit.ret;
  let source =
    Program.concat (Builder.to_source b :: List.map snd st.plans)
  in
  {
    entry;
    params;
    source;
    millicode_calls = st.millicode_calls;
    inline_multiplies = st.inline_multiplies;
  }

let compile64 ?entry ~trap_overflow ~small_divisor_dispatch ?require_certified
    ~params expr =
  let entry = Option.value entry ~default:"proc" in
  if trap_overflow then
    raise
      (Unsupported
         "trap_overflow is a single-word discipline (the ,o completer traps \
          on 32-bit overflow); it has no W64 lowering");
  if List.length params > List.length param_pairs then
    raise
      (Unsupported
         (Printf.sprintf
            "%d parameters exceed the 2 double-word argument pairs"
            (List.length params)));
  let b = Builder.create ~prefix:entry () in
  Builder.label b entry;
  let vars = List.mapi (fun i v -> (v, List.nth param_pairs i)) params in
  (* Incoming dwords arrive in the arg pairs; move them into preserved
     pairs before any millicode call clobbers them. *)
  List.iteri
    (fun i (_, p) ->
      move_pair b
        (List.nth [ (Reg.arg0, Reg.arg1); (Reg.arg2, Reg.arg3) ] i)
        p)
    vars;
  let st =
    make_state64 ?require_certified b ~vars ~temps:temp_pairs
      ~small_divisor_dispatch
  in
  let rh, rl = emit64 st expr in
  Builder.insns b [ Emit.copy rh Reg.ret0; Emit.copy rl Reg.ret1 ];
  Builder.insn b Emit.ret;
  {
    entry;
    params;
    source = Builder.to_source b;
    millicode_calls = st.millicode_calls64;
    inline_multiplies = st.inline_multiplies64;
  }

let compile ?entry ?(trap_overflow = false) ?(small_divisor_dispatch = false)
    ?require_certified ?(width = Expr.W32) ~params expr =
  match width with
  | Expr.W32 ->
      compile32 ?entry ~trap_overflow ~small_divisor_dispatch
        ?require_certified ~params expr
  | Expr.W64 ->
      compile64 ?entry ~trap_overflow ~small_divisor_dispatch
        ?require_certified ~params expr

let compile_and_link ?entry ?trap_overflow ?small_divisor_dispatch
    ?require_certified ?width ~params expr =
  let unit_ =
    compile ?entry ?trap_overflow ?small_divisor_dispatch ?require_certified
      ?width ~params expr
  in
  Program.resolve_exn (Program.concat [ unit_.source; Millicode.source ])

module Internal = struct
  type nonrec state = state
  type nonrec state64 = state64

  let make_state = make_state
  let emit_expr = emit
  let release = release
  let plans st = List.map snd st.plans
  let millicode_calls st = st.millicode_calls
  let inline_multiplies st = st.inline_multiplies
  let callee_saved = callee_saved
  let make_state64 = make_state64
  let emit_expr64 = emit64
  let release64 = release64
  let millicode_calls64 st = st.millicode_calls64
  let inline_multiplies64 st = st.inline_multiplies64
  let callee_saved_pairs = callee_saved_pairs
end
