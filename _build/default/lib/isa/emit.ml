type reg = Reg.t
type insn = string Insn.t

let add ?(ov = false) a b t = Insn.Alu { op = Add; a; b; t; trap_ov = ov }
let addc ?(ov = false) a b t = Insn.Alu { op = Addc; a; b; t; trap_ov = ov }
let sub ?(ov = false) a b t = Insn.Alu { op = Sub; a; b; t; trap_ov = ov }
let subb ?(ov = false) a b t = Insn.Alu { op = Subb; a; b; t; trap_ov = ov }

let shadd ?(ov = false) k a b t =
  Insn.Alu { op = Shadd k; a; b; t; trap_ov = ov }

let and_ a b t = Insn.Alu { op = And; a; b; t; trap_ov = false }
let or_ a b t = Insn.Alu { op = Or; a; b; t; trap_ov = false }
let xor a b t = Insn.Alu { op = Xor; a; b; t; trap_ov = false }
let andcm a b t = Insn.Alu { op = Andcm; a; b; t; trap_ov = false }
let ds a b t = Insn.Ds { a; b; t }
let addi ?(ov = false) imm a t = Insn.Addi { imm; a; t; trap_ov = ov }
let subi ?(ov = false) imm a t = Insn.Subi { imm; a; t; trap_ov = ov }
let comclr cond a b t = Insn.Comclr { cond; a; b; t }
let comiclr cond imm a t = Insn.Comiclr { cond; imm; a; t }
let extru ?(cond = Cond.Never) r ~pos ~len t =
  Insn.Extr { signed = false; r; pos; len; t; cond }

let extrs ?(cond = Cond.Never) r ~pos ~len t =
  Insn.Extr { signed = true; r; pos; len; t; cond }
let zdep r ~pos ~len t = Insn.Zdep { r; pos; len; t }

let shl r k t =
  assert (k >= 0 && k <= 31);
  Insn.Zdep { r; pos = k; len = 32 - k; t }

let shr_u r k t =
  assert (k >= 0 && k <= 31);
  Insn.Extr { signed = false; r; pos = k; len = 32 - k; t; cond = Cond.Never }

let shr_s r k t =
  assert (k >= 0 && k <= 31);
  Insn.Extr { signed = true; r; pos = k; len = 32 - k; t; cond = Cond.Never }

let shd a b sa t = Insn.Shd { a; b; sa; t }
let ldil imm t = Insn.Ldil { imm; t }
let ldo imm base t = Insn.Ldo { imm; base; t }

let ldi imm t =
  if imm >= -8192l && imm <= 8191l then [ ldo imm Reg.r0 t ]
  else
    let hi = Int32.logand imm 0xffff_f800l in
    let lo = Int32.sub imm hi in
    (* lo is in [0, 0x7ff]; a 14-bit LDO reaches it. *)
    [ ldil hi t; ldo lo t t ]

let copy a t = ldo 0l a t
let ldw disp base t = Insn.Ldw { disp; base; t }
let stw r disp base = Insn.Stw { r; disp; base }
let ldaddr target t = Insn.Ldaddr { target; t }
let comb ?(n = false) cond a b target = Insn.Comb { cond; a; b; target; n }
let comib ?(n = false) cond imm a target = Insn.Comib { cond; imm; a; target; n }
let addib ?(n = false) cond imm a target = Insn.Addib { cond; imm; a; target; n }
let b ?(n = false) target = Insn.B { target; n }
let bl ?(n = false) target t = Insn.Bl { target; t; n }
let blr ?(n = false) x t = Insn.Blr { x; t; n }
let bv ?(n = false) x base = Insn.Bv { x; base; n }
let ret = bv Reg.r0 Reg.rp
let mret = bv Reg.r0 Reg.mrp
let break code = Insn.Break { code }
let nop = Insn.Nop
