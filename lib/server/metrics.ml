(* Counters + log2-bucketed latency histogram under one mutex. Bucket i
   holds latencies in [2^(i-1), 2^i) microseconds (bucket 0: < 1 us). *)

let buckets = 32

type t = {
  mutable requests : int;
  mutable errors : int;
  hist : int array;
  lock : Mutex.t;
}

let create () =
  { requests = 0; errors = 0; hist = Array.make buckets 0; lock = Mutex.create () }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let reset t =
  locked t (fun () ->
      t.requests <- 0;
      t.errors <- 0;
      Array.fill t.hist 0 buckets 0)

let bucket_of_us us =
  if us < 1.0 then 0
  else
    let b = 1 + int_of_float (Float.log2 us) in
    if b >= buckets then buckets - 1 else b

let bucket_upper_us b = if b = 0 then 1.0 else Float.of_int (1 lsl b)

let record t ~error ~us =
  locked t (fun () ->
      t.requests <- t.requests + 1;
      if error then t.errors <- t.errors + 1;
      let b = bucket_of_us us in
      t.hist.(b) <- t.hist.(b) + 1)

let requests t = locked t (fun () -> t.requests)
let errors t = locked t (fun () -> t.errors)

let percentile_locked t q =
  let total = Array.fold_left ( + ) 0 t.hist in
  if total = 0 then 0.0
  else begin
    let rank = Float.to_int (Float.ceil (q *. float_of_int total)) in
    let rank = max 1 (min total rank) in
    let acc = ref 0 and result = ref (bucket_upper_us (buckets - 1)) in
    (try
       for b = 0 to buckets - 1 do
         acc := !acc + t.hist.(b);
         if !acc >= rank then begin
           result := bucket_upper_us b;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let percentile_us t q = locked t (fun () -> percentile_locked t q)

let render t =
  locked t (fun () ->
      Printf.sprintf "requests=%d errors=%d p50_us=%.0f p99_us=%.0f"
        t.requests t.errors
        (percentile_locked t 0.5)
        (percentile_locked t 0.99))

let pp_dump ppf t =
  locked t (fun () ->
      Format.fprintf ppf "@[<v>requests: %d@,errors: %d@,p50: <= %.0f us@,p99: <= %.0f us"
        t.requests t.errors
        (percentile_locked t 0.5)
        (percentile_locked t 0.99);
      Array.iteri
        (fun b n ->
          if n > 0 then
            Format.fprintf ppf "@,latency < %6.0f us: %d" (bucket_upper_us b) n)
        t.hist;
      Format.fprintf ppf "@]")
