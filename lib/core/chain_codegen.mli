(** Compile a chain into Precision instructions.

    Register conventions follow the millicode style of the paper: the
    multiplicand arrives in [arg0] and is left untouched (the source-register
    convention of §5 "Register Use"), the product is produced in [ret0], and
    any extra intermediate values occupy scratch registers — the
    "temporaries" whose count §5 trades against chain length.

    Allocation is greedy over value lifetimes, reusing dead registers, so a
    chain in which every step consumes only the previous element, the
    operand or zero compiles with no temporary at all. *)

type info = {
  instructions : int;  (** static body length, excluding the return *)
  temporaries : int;  (** scratch registers beyond [ret0] *)
}

val body_at :
  ?overflow:bool ->
  ?negate:bool ->
  src:Reg.t ->
  pool:Reg.t array ->
  Chain.t ->
  Builder.t ->
  info
(** Generalised emission: multiplicand in [src] (left untouched), result in
    [pool.(0)], extra intermediates from the rest of the pool. Used by the
    compiler to inline chains at arbitrary registers. *)

val body_at_pair :
  ?negate:bool ->
  src:Reg.t * Reg.t ->
  pool:(Reg.t * Reg.t) array ->
  Chain.t ->
  Builder.t ->
  info
(** Double-word emission: the multiplicand is a (hi:lo) register pair
    (left untouched), the product lands in [pool.(0)], intermediates
    take further pool pairs. Each chain step is a carry-chain sequence
    (ADD/ADDC, SUB/SUBB, SHD + SHxADD + ADDC, SHD/SHL), two to three
    instructions per step; [info.temporaries] counts pairs beyond
    [pool.(0)]. There is no [overflow] form — the [,o] completer traps
    on 32-bit, not 64-bit, overflow. *)

val body : ?overflow:bool -> ?negate:bool -> Chain.t -> Builder.t -> info
(** Emit the multiply body into a builder: reads [arg0], leaves the product
    in [ret0]. [negate] appends the final negation used for negative
    constants. With [overflow] every emitted instruction carries the [,o]
    completer; raises [Invalid_argument] if the chain is not
    {!Chain.is_overflow_safe}. *)

val routine :
  ?overflow:bool -> ?negate:bool -> entry:string -> Chain.t ->
  Program.source * info
(** A callable routine: [entry] label, the body, and a [bv r0(rp)] return
    (the return is not counted in [info.instructions]). *)
