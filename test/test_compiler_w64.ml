(* Differential suite for the width-polymorphic pipeline at Expr.W64:
   random 64-bit expressions and loops lowered onto register pairs and
   executed on the reference interpreter, the threaded-code engine and
   the SoA batch engine against Expr.eval64 / Loop_ir.eval64 — plus the
   divU128by64 kernel against its two-word OCaml model, and the
   certified-selection guarantees for the W64 strategies. *)

module Machine = Hppa_machine.Machine
module Trap = Hppa_machine.Trap
module W64 = Hppa_w64
module Strategy = Hppa_plan.Strategy
module Selector = Hppa_plan.Selector
open Util
open Hppa_compiler

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)

(* A dword generator mixing full-range values with small magnitudes and
   the boundary constants where carry-chain bugs live. *)
let gen_dword =
  let open QCheck.Gen in
  let full_range =
    map2
      (fun hi lo ->
        Int64.logor
          (Int64.shift_left (Int64.of_int32 hi) 32)
          (Int64.logand (Int64.of_int32 lo) 0xFFFF_FFFFL))
      gen_word gen_word
  in
  frequency
    [
      (4, full_range);
      (3, map Int64.of_int (int_range (-65536) 65535));
      ( 2,
        oneofl
          [
            0L; 1L; -1L; 2L; -2L; 15L; 0xFFFF_FFFFL; 0x1_0000_0000L;
            0x1_0000_0001L; Int64.max_int; Int64.min_int;
            Int64.add Int64.min_int 1L; 0x5555_5555_5555_5555L;
          ] );
    ]

let arb_dword = QCheck.make ~print:(Printf.sprintf "%Ld") gen_dword

(* Well-typed W64 expressions over x and y. Divisors are nonzero
   constants other than -1, so the only divergence between the machine
   (which traps on -2^63 / -1) and Int64.div (which pins it) cannot be
   generated; the trap cases are tested directly below. *)
let gen_expr64 : Expr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let gen_const =
    oneof
      [
        map (fun i -> Expr.Const (Int32.of_int i)) (int_range (-5000) 5000);
        map (fun c -> Expr.Const64 c) gen_dword;
      ]
  in
  let gen_divisor =
    oneof
      [
        map
          (fun i ->
            Expr.Const (Int32.of_int (if i >= 0 then i + 1 else i - 1)))
          (int_range (-500) 500);
        map
          (fun c ->
            Expr.Const64
              (if Int64.equal c 0L || Int64.equal c (-1L) then 3L else c))
          gen_dword;
      ]
  in
  let gen_leaf = oneof [ gen_const; oneofl [ Expr.Var "x"; Expr.Var "y" ] ] in
  fix
    (fun self depth ->
      if depth = 0 then gen_leaf
      else
        frequency
          [
            (2, gen_leaf);
            ( 2,
              map2
                (fun a b -> Expr.Add (a, b))
                (self (depth - 1)) (self (depth - 1)) );
            ( 2,
              map2
                (fun a b -> Expr.Sub (a, b))
                (self (depth - 1)) (self (depth - 1)) );
            ( 2,
              map2
                (fun a b -> Expr.Mul (a, b))
                (self (depth - 1)) (self (depth - 1)) );
            (1, map2 (fun a d -> Expr.Div (a, d)) (self (depth - 1)) gen_divisor);
            (1, map2 (fun a d -> Expr.Rem (a, d)) (self (depth - 1)) gen_divisor);
            (1, map (fun a -> Expr.Neg a) (self (depth - 1)));
          ])
    3

let arb_expr64 = QCheck.make ~print:(Format.asprintf "%a" Expr.pp) gen_expr64

(* ------------------------------------------------------------------ *)
(* Expression lowering = eval64, on all three engines                  *)

let result_pair get =
  W64.join (get Reg.ret0) (get Reg.ret1)

let compile64 e =
  Lower.compile_and_link ~width:Expr.W64 ~entry:"f" ~params:[ "x"; "y" ] e

let run64 ~engine prog x y =
  let config = { Machine.Config.default with Machine.Config.engine } in
  let mach = Machine.create ~config prog in
  match Machine.call mach "f" ~args:(W64.operands x y) with
  | Machine.Halted -> Ok (result_pair (Machine.get mach))
  | Machine.Trapped t -> Error t
  | Machine.Fuel_exhausted -> Error (Trap.Break 31)

let prop_lowering64 name ~engine =
  QCheck.Test.make ~name ~count:200
    (QCheck.triple arb_expr64 arb_dword arb_dword) (fun (e, x, y) ->
      let env v = if v = "x" then x else y in
      match run64 ~engine (compile64 e) x y with
      | Ok got -> Int64.equal got (Expr.eval64 ~env e)
      | Error _ -> false)

let prop_lowering64_batch =
  QCheck.Test.make ~name:"W64 lowering on the batch engine = eval64" ~count:60
    (QCheck.pair arb_expr64
       (QCheck.list_of_size (QCheck.Gen.int_range 1 8)
          (QCheck.pair arb_dword arb_dword)))
    (fun (e, operands) ->
      QCheck.assume (operands <> []);
      let env_of (x, y) v = if v = "x" then x else y in
      let prog = compile64 e in
      let b = Machine.Batch.create ~lanes:(List.length operands) prog in
      let args =
        Array.of_list (List.map (fun (x, y) -> W64.operands x y) operands)
      in
      Machine.Batch.call b "f" ~args;
      List.for_all
        (fun (lane, op) ->
          match Machine.Batch.outcome b ~lane with
          | Hppa_machine.Cpu.Halted ->
              Int64.equal
                (result_pair (Machine.Batch.get_reg b ~lane))
                (Expr.eval64 ~env:(env_of op) e)
          | Hppa_machine.Cpu.Trapped _ | Hppa_machine.Cpu.Fuel_exhausted ->
              false)
        (List.mapi (fun i op -> (i, op)) operands))

let test_w64_trap_cases () =
  (* A variable zero divisor must BREAK (divide by zero), and the one
     quotient Int64.div pins but the architecture rejects — -2^63 / -1 —
     must BREAK with the overflow code, at Div and Rem alike. *)
  let div = compile64 (Expr.Div (Var "x", Var "y")) in
  let rem = compile64 (Expr.Rem (Var "x", Var "y")) in
  (match run64 ~engine:true div 5L 0L with
  | Error (Trap.Break c) when c = Trap.divide_by_zero_code -> ()
  | Error t -> Alcotest.failf "wrong trap: %s" (Trap.to_string t)
  | Ok v -> Alcotest.failf "no trap, got %Ld" v);
  (match run64 ~engine:true div Int64.min_int (-1L) with
  | Error (Trap.Break c) when c = Hppa.Div_ext.overflow_break_code -> ()
  | Error t -> Alcotest.failf "wrong trap: %s" (Trap.to_string t)
  | Ok v -> Alcotest.failf "no trap, got %Ld" v);
  (match run64 ~engine:true rem Int64.min_int (-1L) with
  | Error (Trap.Break c) when c = Hppa.Div_ext.overflow_break_code -> ()
  | Error t -> Alcotest.failf "wrong trap: %s" (Trap.to_string t)
  | Ok v -> Alcotest.failf "no trap, got %Ld" v);
  (* A constant divisor never traps for representable quotients. *)
  match run64 ~engine:true (compile64 (Expr.Div (Var "x", Const64 (-1L))))
          Int64.max_int 0L
  with
  | Ok v -> Alcotest.(check bool) "max/-1" true (Int64.equal v Int64.min_int |> not && Int64.equal v (Int64.neg Int64.max_int))
  | Error t -> Alcotest.failf "spurious trap: %s" (Trap.to_string t)

let test_w64_unsupported_names_expression () =
  (* The improved Unsupported message names the offending expression and
     the pair-pool size. *)
  let rec wide n =
    if n = 0 then Expr.Var "x" else Expr.Add (wide (n - 1), wide (n - 1))
  in
  match Lower.compile ~width:Expr.W64 ~entry:"f" ~params:[ "x" ] (wide 14) with
  | exception Lower.Unsupported msg ->
      Alcotest.(check bool)
        (Printf.sprintf "message names the pool (%s)" msg)
        true
        (let has needle =
           let nl = String.length needle and hl = String.length msg in
           let rec go i =
             i + nl <= hl && (String.sub msg i nl = needle || go (i + 1))
           in
           go 0
         in
         has "out of registers" && has "pair")
  | _ -> Alcotest.fail "register exhaustion not detected"

(* ------------------------------------------------------------------ *)
(* Loops at W64                                                        *)

let gen_loop64 : Loop_ir.t QCheck.Gen.t =
  let open QCheck.Gen in
  let gen_body_expr =
    frequency
      [
        ( 3,
          map
            (fun c -> Expr.Add (Var "acc", Expr.Mul (Var "i", Const64 c)))
            gen_dword );
        ( 2,
          map
            (fun c -> Expr.Mul (Var "i", Const (Int32.of_int c)))
            (int_range (-100) 100) );
        (1, return (Expr.Mul (Var "i", Var "acc")));
        (1, map (fun c -> Expr.Add (Var "i", Const64 c)) gen_dword);
      ]
  in
  int_range (-50) 50 >>= fun start ->
  int_range 0 40 >>= fun trip ->
  int_range 1 3 >>= fun step ->
  list_size (int_range 1 2) gen_body_expr >>= fun body ->
  return
    Loop_ir.
      {
        counter = "i";
        start = Int32.of_int start;
        stop = Int32.of_int (start + (trip * step));
        step = Int32.of_int step;
        body = List.map (fun e -> Loop_ir.Assign ("acc", e)) body;
      }

let arb_loop64 =
  QCheck.make ~print:(fun l -> Format.asprintf "%a" Loop_ir.pp l) gen_loop64

let run_kernel64 prog args =
  let mach = Machine.create prog in
  match Machine.call mach "k" ~args with
  | Machine.Halted -> Ok (result_pair (Machine.get mach))
  | Machine.Trapped t -> Error (Trap.to_string t)
  | Machine.Fuel_exhausted -> Error "fuel"

let loop64_init = [ ("acc", 3L); ("n", 7L) ]
let loop64_args = W64.operands 3L 7L

let prop_loop64_matches_eval64 =
  QCheck.Test.make ~name:"compiled W64 loops = Loop_ir.eval64" ~count:100
    arb_loop64 (fun l ->
      QCheck.assume (Loop_ir.trip_count l <= 60);
      let expect = List.assoc "acc" (Loop_ir.eval64 l ~init:loop64_init) in
      let prog =
        Lower_loop.compile_and_link ~width:Expr.W64 ~entry:"k"
          ~inputs:[ "acc"; "n" ] ~result:"acc" l
      in
      match run_kernel64 prog loop64_args with
      | Ok v -> Int64.equal v expect
      | Error _ -> false)

let prop_reduced_loop64_matches_eval64 =
  QCheck.Test.make ~name:"compiled reduced W64 loops = eval_reduced64"
    ~count:100 arb_loop64 (fun l ->
      QCheck.assume (Loop_ir.trip_count l <= 60);
      let reduced = Strength.reduce ~width:Expr.W64 l in
      let expect =
        List.assoc "acc" (Strength.eval_reduced64 reduced ~init:loop64_init)
      in
      let unit_ =
        Lower_loop.compile_reduced ~width:Expr.W64 ~entry:"k"
          ~inputs:[ "acc"; "n" ] ~result:"acc" reduced
      in
      let prog =
        Program.resolve_exn
          (Program.concat [ unit_.source; Hppa.Millicode.source ])
      in
      match run_kernel64 prog loop64_args with
      | Ok v -> Int64.equal v expect
      | Error _ -> false)

let prop_strength64_preserves_semantics =
  QCheck.Test.make ~name:"W64 strength reduction preserves eval64" ~count:300
    arb_loop64 (fun l ->
      let r = Strength.reduce ~width:Expr.W64 l in
      Loop_ir.eval64 l ~init:loop64_init
      = Strength.eval_reduced64 r ~init:loop64_init)

let test_strength64_removes_wide_multiplier () =
  (* A multiplier too wide for any inline chain still reduces. *)
  let l =
    Loop_ir.
      {
        counter = "i";
        start = 0l;
        stop = 10l;
        step = 1l;
        body =
          [
            Assign
              ( "j",
                Expr.Add (Var "j", Expr.Mul (Var "i", Const64 0x1_0000_0018L))
              );
          ];
      }
  in
  let r = Strength.reduce ~width:Expr.W64 l in
  Alcotest.(check int) "one multiply removed" 1 r.multiplies_removed;
  let want = List.assoc "j" (Loop_ir.eval64 l ~init:[ ("j", 0L) ]) in
  let got = List.assoc "j" (Strength.eval_reduced64 r ~init:[ ("j", 0L) ]) in
  Alcotest.(check bool) "semantics preserved" true (Int64.equal want got)

(* ------------------------------------------------------------------ *)
(* divU128by64 against the two-word model                              *)

let outcome = Alcotest.testable W64.pp_outcome W64.outcome_equal

let divl_machine = lazy (Hppa.Millicode.machine ())

let check_divl ~xhi ~xlo y =
  let mach = Lazy.force divl_machine in
  Machine.reset mach;
  Alcotest.check outcome
    (Printf.sprintf "(%Lx:%Lx) / %Lx" xhi xlo y)
    (W64.reference_divl ~xhi ~xlo y)
    (W64.call_divl mach ~xhi ~xlo y)

let test_divl_directed () =
  List.iter
    (fun (xhi, xlo, y) -> check_divl ~xhi ~xlo y)
    [
      (0L, 100L, 7L);
      (0L, 100L, 0L); (* divide by zero *)
      (5L, 0L, 5L); (* hi >= y: unrepresentable quotient *)
      (4L, 0xdeadbeefL, 5L);
      (1L, 0L, 3L); (* yh = 0, chained 64/32 steps *)
      (0x123456789L, 0x42L, 0x1_0000_0000L);
      (0xffff_fffeL, -1L, 0xffff_ffffL);
      (0x7fffL, -1L, Int64.min_int);
      (0L, -1L, -1L);
      (Int64.lognot Int64.min_int, 0L, -1L);
      (1L, 1L, 2L);
    ]

let prop_divl_matches_reference =
  QCheck.Test.make ~name:"divU128by64 = U128 reference" ~count:500
    (QCheck.triple arb_dword arb_dword arb_dword) (fun (xhi, xlo, y) ->
      (* Fold hi under the divisor half the time so the sweep is not
         dominated by overflow traps. *)
      let xhi =
        if Int64.equal y 0L || Int64.logand xlo 1L = 0L then xhi
        else Int64.unsigned_rem xhi y
      in
      let mach = Lazy.force divl_machine in
      Machine.reset mach;
      W64.outcome_equal
        (W64.reference_divl ~xhi ~xlo y)
        (W64.call_divl mach ~xhi ~xlo y))

let prop_divl_batch_matches_scalar =
  QCheck.Test.make ~name:"batched divU128by64 = scalar lanes" ~count:60
    (QCheck.list_of_size
       (QCheck.Gen.int_range 1 8)
       (QCheck.triple arb_dword arb_dword arb_dword))
    (fun triples ->
      QCheck.assume (triples <> []);
      let mach = Lazy.force divl_machine in
      let b =
        Machine.Batch.create ~lanes:(List.length triples)
          (Machine.program mach)
      in
      let args =
        Array.of_list
          (List.map
             (fun (xhi, xlo, y) -> W64.operands_divl ~xhi ~xlo y)
             triples)
      in
      Machine.Batch.call b W64.divl_entry ~args;
      List.for_all
        (fun (lane, (xhi, xlo, y)) ->
          W64.outcome_equal
            (W64.reference_divl ~xhi ~xlo y)
            (W64.batch_outcome b ~lane))
        (List.mapi (fun i t -> (i, t)) triples))

(* ------------------------------------------------------------------ *)
(* Certified selection at W64                                          *)

let choice_certified name req =
  match Selector.choose ~require_certified:true req with
  | Error msg -> Alcotest.failf "%s refused under certified: %s" name msg
  | Ok choice ->
      (match choice.Selector.certificate with
      | Some _ -> ()
      | None -> Alcotest.failf "%s chosen without a certificate" name);
      choice

let target_of (choice : Selector.choice) =
  match choice.Selector.emission.Strategy.detail with
  | Strategy.Millicode target -> target
  | _ -> "(inline)"

let test_w64_certified_divides () =
  (* Every W64 constant-divide selection under certified-only serving
     carries a discharging body-equivalence certificate — including the
     128/64 divide. *)
  List.iter
    (fun c ->
      List.iter
        (fun signedness ->
          let dc =
            choice_certified
              (Printf.sprintf "w64_div_const %Ld" c)
              (Strategy.w64_div_const signedness c)
          in
          Alcotest.(check bool)
            (Printf.sprintf "div by %Ld targets millicode" c)
            true
            (target_of dc = "divU64w" || target_of dc = "divI64w");
          ignore
            (choice_certified
               (Printf.sprintf "w64_rem_const %Ld" c)
               (Strategy.w64_rem_const signedness c)))
        [ Strategy.Unsigned; Strategy.Signed ])
    [ 3L; 10L; -7L; 0x1_0000_0001L ];
  let divl = choice_certified "w64_divl" Strategy.w64_divl in
  Alcotest.(check string)
    "divl targets divU128by64" "divU128by64" (target_of divl)

let test_w64_certified_mul_const_prefers_millicode () =
  (* Inline pair chains carry no certificate, so certified-only
     selection falls back to the certified mulI128 call-through; the
     uncertified selector keeps the cheaper chain. *)
  let free = Selector.choose (Strategy.w64_mul_const 625L) in
  (match free with
  | Ok c ->
      Alcotest.(check string)
        "uncertified winner is the chain" "w64_mul_const_chain"
        c.Selector.chosen.Strategy.name
  | Error msg -> Alcotest.failf "uncertified selection failed: %s" msg);
  let cert = choice_certified "w64_mul_const" (Strategy.w64_mul_const 625L) in
  Alcotest.(check string)
    "certified winner calls through" "w64_mul_millicode"
    cert.Selector.chosen.Strategy.name

let suite =
  [
    ( "compiler64:unit",
      [
        Alcotest.test_case "W64 trap cases" `Quick test_w64_trap_cases;
        Alcotest.test_case "W64 register exhaustion message" `Quick
          test_w64_unsupported_names_expression;
        Alcotest.test_case "W64 strength reduction of wide multiplier" `Quick
          test_strength64_removes_wide_multiplier;
        Alcotest.test_case "divU128by64 directed" `Quick test_divl_directed;
        Alcotest.test_case "certified W64 divides carry certificates" `Quick
          test_w64_certified_divides;
        Alcotest.test_case "certified W64 mul falls back to millicode" `Quick
          test_w64_certified_mul_const_prefers_millicode;
      ] );
    qsuite "compiler64:props"
      [
        prop_lowering64 "W64 lowering on the interpreter = eval64"
          ~engine:false;
        prop_lowering64 "W64 lowering on the engine = eval64" ~engine:true;
        prop_lowering64_batch;
        prop_loop64_matches_eval64;
        prop_reduced_loop64_matches_eval64;
        prop_strength64_preserves_semantics;
        prop_divl_matches_reference;
        prop_divl_batch_matches_scalar;
      ];
  ]
