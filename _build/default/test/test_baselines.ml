(* Tests for the comparison baselines: the Booth multiply-step model and
   the restoring / non-restoring division algorithms (section 2). *)

module Word = Hppa_word.Word
open Util
open Hppa_baselines

let prop_booth_exact =
  QCheck.Test.make ~name:"Booth radix-4 = full signed product" ~count:3000
    (QCheck.pair arb_word arb_word) (fun (x, y) ->
      let hi, lo = Booth.multiply x y in
      let hi', lo' = Word.mul_wide_s x y in
      Word.equal hi hi' && Word.equal lo lo')

let test_booth_edges () =
  List.iter
    (fun (x, y) ->
      let hi, lo = Booth.multiply x y in
      let hi', lo' = Word.mul_wide_s x y in
      if not (Word.equal hi hi' && Word.equal lo lo') then
        Alcotest.failf "booth %ld * %ld = (%ld,%ld) want (%ld,%ld)" x y hi lo hi' lo')
    [
      (0l, 0l); (1l, -1l); (Int32.min_int, Int32.min_int);
      (Int32.min_int, -1l); (Int32.max_int, Int32.max_int);
      (Int32.min_int, Int32.max_int); (-3l, 7l); (0x55555555l, 0x33333333l);
    ]

let test_booth_cycle_model () =
  Alcotest.(check int) "16 steps" 16 Booth.steps;
  Alcotest.(check int) "20-cycle model" 20 (Booth.cycles ())

let prop_restoring =
  QCheck.Test.make ~name:"restoring division correct" ~count:3000
    (QCheck.pair arb_word arb_word) (fun (x, y) ->
      QCheck.assume (not (Word.equal y 0l));
      let r = Shift_sub_div.restoring x y in
      let q', r' = Word.divmod_u x y in
      Word.equal r.quotient q' && Word.equal r.remainder r')

let prop_non_restoring =
  QCheck.Test.make ~name:"non-restoring division correct" ~count:3000
    (QCheck.pair arb_word arb_word) (fun (x, y) ->
      QCheck.assume (not (Word.equal y 0l));
      let r = Shift_sub_div.non_restoring x y in
      let q', r' = Word.divmod_u x y in
      Word.equal r.quotient q' && Word.equal r.remainder r')

let prop_op_counts =
  (* The paper: restoring may need an add AND a subtract per bit;
     non-restoring exactly one per bit (+ a final correction). *)
  QCheck.Test.make ~name:"operation-count claims of section 2" ~count:2000
    (QCheck.pair arb_word arb_word) (fun (x, y) ->
      QCheck.assume (not (Word.equal y 0l));
      let r = Shift_sub_div.restoring x y in
      let n = Shift_sub_div.non_restoring x y in
      r.add_sub_ops >= 32
      && r.add_sub_ops <= 64
      && (n.add_sub_ops = 32 || n.add_sub_ops = 33)
      && n.add_sub_ops <= r.add_sub_ops)

let test_division_by_zero () =
  Alcotest.check_raises "restoring /0" Division_by_zero (fun () ->
      ignore (Shift_sub_div.restoring 1l 0l));
  Alcotest.check_raises "non-restoring /0" Division_by_zero (fun () ->
      ignore (Shift_sub_div.non_restoring 1l 0l))

let test_worst_case_restoring () =
  (* All-ones dividend by 1: every trial subtraction succeeds. *)
  let r = Shift_sub_div.restoring (-1l) 1l in
  Alcotest.(check int) "no restores needed" 32 r.add_sub_ops;
  (* Dividend 0 by big divisor: every trial fails and restores. *)
  let r = Shift_sub_div.restoring 0l 12345l in
  Alcotest.(check int) "all restores" 64 r.add_sub_ops

let suite =
  [
    ( "baselines:unit",
      [
        Alcotest.test_case "booth edges" `Quick test_booth_edges;
        Alcotest.test_case "booth cycle model" `Quick test_booth_cycle_model;
        Alcotest.test_case "division by zero" `Quick test_division_by_zero;
        Alcotest.test_case "restoring worst cases" `Quick test_worst_case_restoring;
      ] );
    qsuite "baselines:props"
      [ prop_booth_exact; prop_restoring; prop_non_restoring; prop_op_counts ];
  ]
