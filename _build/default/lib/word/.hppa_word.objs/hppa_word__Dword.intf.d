lib/word/dword.mli: Format Word
