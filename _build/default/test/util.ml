(* Shared helpers for the test suites. *)

module Word = Hppa_word.Word
module Machine = Hppa_machine.Machine

let word = Alcotest.testable Word.pp Word.equal

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

(* An int32 generator mixing the full range with small magnitudes and the
   boundary constants where arithmetic bugs live. *)
let gen_word =
  let open QCheck.Gen in
  let full_range =
    map2
      (fun hi lo -> Int32.logor (Int32.shift_left (Int32.of_int hi) 16) (Int32.of_int lo))
      (int_bound 0xffff) (int_bound 0xffff)
  in
  frequency
    [
      (4, full_range);
      (3, map Int32.of_int (int_range (-65536) 65535));
      (2, map Int32.of_int (int_bound 255));
      ( 2,
        oneofl
          [
            0l; 1l; -1l; 2l; -2l; 15l; 16l; 255l; 256l; 0x7fffl; 0x8000l;
            0xffffl; 0x10000l; Int32.max_int; Int32.min_int;
            Int32.add Int32.min_int 1l; 0x5555_5555l; 0xAAAA_AAAAl;
          ] );
    ]

let arb_word = QCheck.make ~print:(Printf.sprintf "%ld") gen_word

(* Run an entry point; fail the test on traps. *)
let call_exn mach entry args =
  match Machine.call mach entry ~args with
  | Machine.Halted -> Machine.get mach Reg.ret0
  | Machine.Trapped t ->
      Alcotest.failf "unexpected trap: %s" (Hppa_machine.Trap.to_string t)
  | Machine.Fuel_exhausted -> Alcotest.fail "out of fuel"

let call_cycles_exn mach entry args =
  let before = Hppa_machine.Stats.cycles (Machine.stats mach) in
  let r = call_exn mach entry args in
  (r, Hppa_machine.Stats.cycles (Machine.stats mach) - before)
