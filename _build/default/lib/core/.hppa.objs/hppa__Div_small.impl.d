lib/core/div_small.ml: Builder Cond Div_const Emit Hppa_machine Int32 List Printf Program Reg
