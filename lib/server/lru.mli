(** Bounded, thread-safe LRU cache for plan bytes.

    Keys and values are strings (the normalized request and the reply
    payload). Every operation takes an internal mutex, so one cache can
    front the whole worker pool; {!find} promotes the entry to
    most-recently-used and counts a hit or a miss, {!add} inserts (or
    refreshes) and evicts the least-recently-used entry once {!capacity}
    is exceeded.

    Determinism note: the cache stores the exact reply bytes computed on
    the first miss, and plan computation is a pure function of the
    request — so a hit returns byte-identical output to a recompute, and
    cache state can never change what a client observes (DESIGN.md,
    "Serving"). *)

type t

val create : capacity:int -> t
(** [capacity >= 1], else [Invalid_argument]. *)

val capacity : t -> int
val size : t -> int

val find : t -> string -> string option
(** Lookup; bumps the hit or miss counter and the entry's recency. *)

val add : t -> string -> string -> unit
(** Insert or refresh a binding, evicting the LRU entry if the cache is
    full. Adding an existing key overwrites its value. *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int

val hit_rate : t -> float
(** [hits / (hits + misses)]; 0 when the cache is untouched. *)
