(** 64-bit double words represented as a (hi, lo) pair of 32-bit words.

    The constant-division derivation (§7 of the paper) manipulates the
    intermediate product [a*x + b] "in a multiple precision fashion" using two
    32-bit registers; this module is the reference model for those register
    pairs, with the same carry-chain structure the generated code uses. *)

type t = { hi : Word.t; lo : Word.t }

val zero : t
val make : hi:Word.t -> lo:Word.t -> t
val of_word_u : Word.t -> t
(** Zero-extend a word. *)

val of_word_s : Word.t -> t
(** Sign-extend a word. *)

val of_int64 : int64 -> t
val to_int64 : t -> int64

val add : t -> t -> t
(** Full 64-bit add implemented as the low-word add producing a carry into
    the high-word [ADDC] — exactly the two-instruction machine idiom. *)

val add_word_u : t -> Word.t -> t
val shl : t -> int -> t
(** Shift left by [0..63]. *)

val shr_u : t -> int -> t
val sh_add : int -> t -> t -> t
(** Double-word shift-and-add: [(a << k) + b] for [k] in 0..3, the
    two-to-four instruction idiom used by Figure 7. *)

val equal : t -> t -> bool
val compare_u : t -> t -> int
val pp : Format.formatter -> t -> unit
