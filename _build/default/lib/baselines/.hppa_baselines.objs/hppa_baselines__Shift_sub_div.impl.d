lib/baselines/shift_sub_div.ml: Hppa_word Int32 Int64
