(** The modern round-up reciprocal method — an ablation baseline.

    The paper's derived method (1987) rounds the reciprocal {e down}
    ([a = floor(z/y)]) and compensates with the additive [b], which caps
    the covered dividend range (Figure 6's [(K+1)y] column) and pushes
    [y = 11] out of double-word reach. The method that later became
    standard (Granlund–Montgomery 1994, as in compilers and Hacker's
    Delight) rounds {e up} — [m = ceil(2^p / y)] — which covers the full
    2{^32} range for every divisor, at the price of an occasionally 33-bit
    multiplier needing an extra add-shift fixup.

    This module implements that method so the bench can compare the two
    designs on equal footing: same machine, same double-word shift-and-add
    multiplication. The comparison isolates the paper's design choice
    (floor + adjustment vs. round-up), seven years early. *)

type t = {
  d : int32;  (** divisor >= 2 (any parity) *)
  m : int64;  (** the round-up magic multiplier; may need 33 bits *)
  p : int;  (** shift: q = (m * x) >> p *)
  add_fixup : bool;
      (** true when [m] needs 33 bits: the generated sequence uses
          [t = hi(m' * x); q = ((x - t) >> 1 + t) >> (p - 33)] *)
}

val derive : int32 -> t
(** For unsigned division by [d >= 2] over the full 32-bit range. *)

val eval : t -> Hppa_word.Word.t -> Hppa_word.Word.t
(** Reference evaluation (exact for all 32-bit [x]); executes the fixup
    sequence when [add_fixup] is set. *)

val chain_cost : t -> int option
(** Length of the shift-and-add chain for [m] when the same double-word
    code generation used for the paper's method applies ([m] < 2{^32} and
    a word-safe chain exists); [None] when only the fixup form works. *)
