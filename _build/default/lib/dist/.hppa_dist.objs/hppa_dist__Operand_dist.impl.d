lib/dist/operand_dist.ml: Hppa_word Int64 List Prng
