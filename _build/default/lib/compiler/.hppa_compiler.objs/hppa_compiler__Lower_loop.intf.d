lib/compiler/lower_loop.mli: Loop_ir Program Strength
