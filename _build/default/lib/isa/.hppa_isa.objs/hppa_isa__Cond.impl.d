lib/isa/cond.ml: Format Hppa_word List
