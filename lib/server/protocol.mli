(** The hppa-serve wire protocol.

    Line-oriented, ASCII, one request and one reply per line. Requests:

    {v MUL <n>                 constant-multiply plan for the int32 n
      DIV <d>                 constant-divide plan (d < 0: signed plan)
      MULB <n...>             batch of 1..64 constant-multiply plans
      DIVB <d...>             batch of 1..64 constant-divide plans
      EVAL <entry> <args...>  run a millicode entry (up to 4 int32 args)
      STATS                   server counters and latency percentiles
      METRICS                 Prometheus text scrape of the registry
      PING                    liveness probe
      QUIT                    close this connection v}

    Replies are a single line starting with ["OK "] or ["ERR "] — with
    two exceptions. [METRICS] replies with multi-line Prometheus
    exposition text terminated by a line reading ["# EOF"]. The batch
    verbs [MULB]/[DIVB] reply with a header line ["OK MULB k=<K>"]
    followed by exactly K lines, the i-th being byte-identical to the
    reply a scalar [MUL <n_i>] / [DIV <d_i>] request would have
    produced (["OK ..."] or, e.g. for a zero divisor lane,
    ["ERR ..."]):

    {v OK MUL n=625 steps=4 ... code=...
      ERR parse unknown command "FROB" v}

    Parsing is total: {!parse} never raises, whatever the input bytes.
    Number arguments accept OCaml int literal syntax ([0x..] included)
    and must fit in 32 bits. *)

type request =
  | Mul of int32
  | Div of int32
  | Mulb of int32 list
  | Divb of int32 list
  | Eval of string * Hppa_word.Word.t list
  | Stats
  | Metrics
  | Ping
  | Quit

val verb : request -> string
(** The command word of a request (["MUL"], ["EVAL"], ...) — used as
    the [verb] label on per-verb latency histograms. *)

val max_line_bytes : int
(** Longest accepted request line (1024); longer lines are rejected with
    an [oversized] error by {!Server.respond} and by the connection
    reader. *)

val max_batch_operands : int
(** Most operands one [MULB]/[DIVB] request may carry (64) — sized so a
    maximal batch still fits in {!max_line_bytes}. One malformed
    operand rejects the whole batch: a partial batch would
    desynchronize the lane-indexed reply. *)

val parse : string -> (request, string) result
(** Parse one request line (no trailing newline; a trailing ['\r'] is
    tolerated). [Error detail] is ["<category> <message>"], ready to be
    prefixed with ["ERR "]. Never raises. *)

val ok : string -> string
(** [ok payload] is ["OK " ^ payload]. *)

val err : string -> string
(** [err detail] is ["ERR " ^ detail], with newlines squashed so the
    reply stays one line. *)

val is_ok : string -> bool
val is_err : string -> bool

val pp_request : Format.formatter -> request -> unit
