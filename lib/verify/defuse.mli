(** Register and PSW dataflow over a {!Cfg}.

    Two fixpoints per routine entry:

    - {e must-defined} (forward, intersection join): which general
      registers — and the PSW carry/overflow bits — are certainly written
      on {e every} path from the entry. At entry the routine's declared
      [args] plus [r0], [rp], [sp] and [mrp] are defined (the millicode
      convention: arguments set up by the caller, link registers and the
      stack pointer always valid); both PSW bits start {e undefined}, so
      an [ADDC] or [DS] reachable without a carry-establishing
      instruction on some path is reported. A call summary leaves its
      [results] defined, its remaining [clobbers] undefined, and both PSW
      bits undefined.
    - {e may-live} (backward, union join): which registers may still be
      read. Live-out at a return is [results] + [rp] + [sp]; at a trap,
      off-image or indirect exit {e every} register is live
      (conservative — trap handlers and unknown continuations may
      inspect anything).

    Findings:
    - {!Findings.Use_before_def} / {!Findings.Psw_before_def} (errors)
      for reads not covered by the must-defined state;
    - {!Findings.Dead_write} (warnings) for side-effect-free
      instructions ([LDI]/[LDIL]/[LDO]/[ZDEP]/[SHD]/plain [EXTR]/
      [LDADDR]) whose target is dead — carry-writers and nullifying
      instructions are never reported, their job may be the side effect;
    - {!Findings.Convention} (errors) for return paths on which a
      declared result register is not certainly defined. *)

type t

val analyze : Cfg.t -> entry:int -> t
(** Run both fixpoints from the routine entry at this address, checking
    against [Cfg.spec_at] of that address. *)

val use_before_def : t -> Findings.t list
val dead_writes : t -> Findings.t list
val undefined_results : t -> Findings.t list

val check : Cfg.t -> entry:int -> Findings.t list
(** All three, in the order above. *)
