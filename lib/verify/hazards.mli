(** Delay-slot hazard lint: a positional scan machine-checking the
    invariants {!Delay.schedule} promises about its output.

    In delay-slot mode, for every branch whose [,n] completer is clear
    (i.e. whose slot does real work):

    - the slot instruction must not itself be a branch (errors: the
      machine would have two pending transfers);
    - the slot must not hold a nullifying instruction ([COMCLR],
      [COMICLR], conditional [EXTR]) — its shadow would fall on the
      branch target rather than the instruction the simple-model code
      placed after it;
    - the slot must not hold an instruction that may trap — a trap
      inside an executed slot reports the wrong PC;
    - the instruction {e before} the branch must not be a nullifier:
      annulling a filled branch skips the transfer but the hoisted slot
      instruction would still execute, diverging from the simple-model
      order the scheduler started from. (A nullifier before a [,n]
      branch — the [extru,<>]/[bv,n] loop idiom — is fine and not
      flagged.)

    A trailing branch with no instruction after it (its slot fetch runs
    off the image) is a warning, as is any [,n] completer in
    simple-mode code, where it has no effect and suggests the program
    was scheduled for the wrong model. *)

val check : Cfg.t -> Findings.t list
(** Scan the whole program image of the graph, using its mode. *)
