(* Delay-slot mode: semantics preservation of the Delay transforms over
   the entire millicode library, plus targeted slot behaviour. *)

module Word = Hppa_word.Word
module Machine = Hppa_machine.Machine
module Trap = Hppa_machine.Trap
open Util
open Hppa

let baseline = lazy (Millicode.machine ())

let naive_machine =
  lazy
    (Machine.create ~delay_slots:true
       (Program.resolve_exn (Delay.naive Millicode.source)))

let scheduled_machine =
  lazy
    (Machine.create ~delay_slots:true
       (Program.resolve_exn (Delay.schedule Millicode.source)))

type result = Value of Word.t * Word.t | Trapped of Trap.t | Failed

let call mach entry args =
  match Machine.call mach entry ~args with
  | Machine.Halted -> Value (Machine.get mach Reg.ret0, Machine.get mach Reg.ret1)
  | Machine.Trapped t -> Trapped t
  | Machine.Fuel_exhausted -> Failed

let call_cycles mach entry args =
  let before = Hppa_machine.Stats.cycles (Machine.stats mach) in
  let r = call mach entry args in
  (r, Hppa_machine.Stats.cycles (Machine.stats mach) - before)

(* Entries exercised with arguments valid for each of them. *)
let cases g =
  let w () = Hppa_dist.Prng.word g in
  let nonzero () =
    let v = w () in
    if Word.equal v 0l then 1l else v
  in
  [
    ("mul_naive", [ w (); w () ]);
    ("mul_nibble", [ w (); w () ]);
    ("mul_switch", [ w (); w () ]);
    ("mul_final", [ w (); w () ]);
    ("mulo", [ w (); w () ]);
    ("mulU64", [ w (); w () ]);
    ("mulI64", [ w (); w () ]);
    ("divU", [ w (); nonzero () ]);
    ("divI", [ w (); nonzero () ]);
    ("remU", [ w (); nonzero () ]);
    ("remI", [ w (); nonzero () ]);
    ("divU_small", [ w (); Hppa_dist.Operand_dist.small_divisor g ]);
    ("divI_small", [ w (); Hppa_dist.Operand_dist.small_divisor g ]);
    ("divU64", [ 2l; w (); 7l ]);
    ("divI64", [ -2l; w (); 7l ]);
  ]

let test_all_entries_agree () =
  let g = Hppa_dist.Prng.create 0xDE1A5L in
  for _ = 1 to 200 do
    List.iter
      (fun (entry, args) ->
        let r0 = call (Lazy.force baseline) entry args in
        let r1 = call (Lazy.force naive_machine) entry args in
        let r2 = call (Lazy.force scheduled_machine) entry args in
        if not (r0 = r1 && r1 = r2) then
          Alcotest.failf "%s diverges across pipeline models" entry)
      (cases g)
  done

let test_cycle_ordering () =
  (* Scheduled code never costs more than naive ,n code, and naive costs
     at most one extra cycle per taken branch over the ideal model. *)
  let g = Hppa_dist.Prng.create 0xC0DE5L in
  for _ = 1 to 100 do
    List.iter
      (fun (entry, args) ->
        let r0, c0 = call_cycles (Lazy.force baseline) entry args in
        let _, c1 = call_cycles (Lazy.force naive_machine) entry args in
        let _, c2 = call_cycles (Lazy.force scheduled_machine) entry args in
        match r0 with
        | Value _ ->
            if not (c0 <= c2 && c2 <= c1) then
              Alcotest.failf "%s: cycle order violated (%d / %d / %d)" entry c0
                c2 c1
        | Trapped _ | Failed -> ())
      (cases g)
  done

let test_slot_executes () =
  (* The canonical demonstration: without ,n the instruction after a taken
     branch executes. *)
  let src =
    Asm.parse_exn
      {| main:  ldi 1, ret0
                b done
                ldi 2, ret0        ; delay slot: executes!
                ldi 3, ret0
         done:  bv,n r0(rp) |}
  in
  let mach = Machine.create ~delay_slots:true (Program.resolve_exn src) in
  (match Machine.call mach "main" ~args:[] with
  | Machine.Halted -> Alcotest.check word "slot executed" 2l (Machine.get mach Reg.ret0)
  | _ -> Alcotest.fail "halt expected");
  (* Same program on the simple model would be wrong — which is why the
     Delay transforms exist. *)
  let mach = Machine.create (Program.resolve_exn src) in
  (match Machine.call mach "main" ~args:[] with
  | Machine.Halted -> Alcotest.check word "simple model skips" 1l (Machine.get mach Reg.ret0)
  | _ -> Alcotest.fail "halt expected")

let test_nullified_slot () =
  let src =
    Asm.parse_exn
      {| main:  ldi 1, ret0
                b,n done
                ldi 2, ret0        ; nullified slot
         done:  bv,n r0(rp) |}
  in
  let mach = Machine.create ~delay_slots:true (Program.resolve_exn src) in
  (match Machine.call mach "main" ~args:[] with
  | Machine.Halted -> Alcotest.check word "slot nullified" 1l (Machine.get mach Reg.ret0)
  | _ -> Alcotest.fail "halt expected");
  (* Both nullified slots cost their cycle (the return's slot lies past
     the image end and is charged as a virtual nullified fetch). *)
  Alcotest.(check int) "cycles" 5
    (Hppa_machine.Stats.cycles (Machine.stats mach))

let test_untaken_branch_slot_is_normal () =
  let src =
    Asm.parse_exn
      {| main:  comib,= 0, arg0, skip   ; not taken for arg0 = 5
                ldi 7, ret0
                bv,n r0(rp)
         skip:  ldi 9, ret0
                bv,n r0(rp) |}
  in
  let mach = Machine.create ~delay_slots:true (Program.resolve_exn src) in
  (match Machine.call mach "main" ~args:[ 5l ] with
  | Machine.Halted -> Alcotest.check word "fallthrough" 7l (Machine.get mach Reg.ret0)
  | _ -> Alcotest.fail "halt expected");
  match Machine.call mach "main" ~args:[ 0l ] with
  | Machine.Halted -> Alcotest.check word "taken" 9l (Machine.get mach Reg.ret0)
  | _ -> Alcotest.fail "halt expected"

let test_bl_links_past_slot () =
  let src =
    Asm.parse_exn
      {| main:  bl sub1, mrp
                ldi 5, r4          ; slot: runs before the callee
                addi 1, ret0, ret0 ; return point
                bv,n r0(rp)
         sub1:  copy r4, ret0
                bv,n r0(mrp) |}
  in
  let mach = Machine.create ~delay_slots:true (Program.resolve_exn src) in
  match Machine.call mach "main" ~args:[] with
  | Machine.Halted -> Alcotest.check word "5 + 1" 6l (Machine.get mach Reg.ret0)
  | _ -> Alcotest.fail "halt expected"

let test_scheduler_fills () =
  (* A typical tail: the add moves into the return's slot. *)
  let src =
    Asm.parse_exn
      {| f:  add arg0, arg1, ret0
            bv r0(rp) |}
  in
  let scheduled = Delay.schedule src in
  let st = Delay.stats_of scheduled in
  Alcotest.(check int) "one branch" 1 st.Delay.branches;
  Alcotest.(check int) "filled" 1 st.Delay.filled;
  let mach = Machine.create ~delay_slots:true (Program.resolve_exn scheduled) in
  match Machine.call mach "f" ~args:[ 30l; 12l ] with
  | Machine.Halted -> Alcotest.check word "sum" 42l (Machine.get mach Reg.ret0)
  | _ -> Alcotest.fail "halt expected"

let test_scheduler_respects_dependences () =
  (* The branch reads what the candidate writes: must not fill. *)
  let src =
    Asm.parse_exn
      {| f:  addi 1, arg0, arg0
            comib,= 0, arg0, zero
            ldi 1, ret0
            bv,n r0(rp)
         zero: ldi 2, ret0
            bv,n r0(rp) |}
  in
  let scheduled = Delay.schedule src in
  let mach = Machine.create ~delay_slots:true (Program.resolve_exn scheduled) in
  (match Machine.call mach "f" ~args:[ -1l ] with
  | Machine.Halted -> Alcotest.check word "incremented then tested" 2l (Machine.get mach Reg.ret0)
  | _ -> Alcotest.fail "halt expected");
  match Machine.call mach "f" ~args:[ 5l ] with
  | Machine.Halted -> Alcotest.check word "fallthrough" 1l (Machine.get mach Reg.ret0)
  | _ -> Alcotest.fail "halt expected"

let test_scheduler_fill_rate () =
  let st = Delay.stats_of (Delay.schedule Millicode.source) in
  let rate = float_of_int st.Delay.filled /. float_of_int st.Delay.branches in
  if rate < 0.25 then
    Alcotest.failf "fill rate %.2f too low (%d of %d)" rate st.Delay.filled
      st.Delay.branches

let suite =
  [
    ( "delay:unit",
      [
        Alcotest.test_case "all entries agree" `Slow test_all_entries_agree;
        Alcotest.test_case "cycle ordering" `Slow test_cycle_ordering;
        Alcotest.test_case "slot executes" `Quick test_slot_executes;
        Alcotest.test_case "nullified slot" `Quick test_nullified_slot;
        Alcotest.test_case "untaken branch slot" `Quick test_untaken_branch_slot_is_normal;
        Alcotest.test_case "bl links past slot" `Quick test_bl_links_past_slot;
        Alcotest.test_case "scheduler fills" `Quick test_scheduler_fills;
        Alcotest.test_case "scheduler dependences" `Quick test_scheduler_respects_dependences;
        Alcotest.test_case "millicode fill rate" `Quick test_scheduler_fill_rate;
      ] );
  ]
