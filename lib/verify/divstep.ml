exception Mismatch of string

let bad addr fmt =
  Printf.ksprintf (fun m -> raise (Mismatch (Printf.sprintf "at %d: %s" addr m))) fmt

type roles = {
  mutable lo : Reg.t option;
  mutable rem : Reg.t option;
  mutable qbit : Reg.t option;
  mutable qsign : Reg.t option;
  mutable rsign : Reg.t option;
}

let role_values r =
  List.filter_map (fun v -> v) [ r.lo; r.rem; r.qbit; r.qsign; r.rsign ]

let reserved =
  [ Reg.r0; Reg.arg0; Reg.arg1; Reg.ret0; Reg.ret1; Reg.mrp ]

(* bind a role on first sight; later sights must agree *)
let capture roles addr what get set reg =
  if List.exists (Reg.equal reg) reserved then
    bad addr "%s role uses reserved register" what;
  match get roles with
  | None ->
      if List.exists (Reg.equal reg) (role_values roles) then
        bad addr "%s role aliases another role" what;
      set roles (Some reg)
  | Some r ->
      if not (Reg.equal r reg) then bad addr "%s role is inconsistent" what

let cap_lo r a = capture r a "lo" (fun r -> r.lo) (fun r v -> r.lo <- v)
let cap_rem r a = capture r a "rem" (fun r -> r.rem) (fun r v -> r.rem <- v)
let cap_qbit r a = capture r a "qbit" (fun r -> r.qbit) (fun r v -> r.qbit <- v)

let cap_qsign r a =
  capture r a "qsign" (fun r -> r.qsign) (fun r v -> r.qsign <- v)

let cap_rsign r a =
  capture r a "rsign" (fun r -> r.rsign) (fun r v -> r.rsign <- v)

let same roles addr what get reg =
  match get roles with
  | Some r when Reg.equal r reg -> ()
  | _ -> bad addr "%s role expected here" what

let certify cfg ~entry ~name ~signed ~want_rem =
  let pos = ref entry in
  let fetch () =
    let a = !pos in
    match Cfg.insn cfg a with
    | i ->
        incr pos;
        (a, i)
    | exception _ -> bad a "walked off the program image"
  in
  let roles =
    { lo = None; rem = None; qbit = None; qsign = None; rsign = None }
  in
  let is0 = Reg.equal Reg.r0 in
  let expect_zero_check () =
    match fetch () with
    | _, Insn.Comib { cond = Cond.Eq; imm = 0l; a; target; n = false }
      when Reg.equal a Reg.arg1 ->
        target
    | a, _ -> bad a "expected the divide-by-zero check"
  in
  let expect_signed_prologue () =
    (match fetch () with
    | addr, Insn.Alu { op = Xor; a; b; t; trap_ov = false }
      when Reg.equal a Reg.arg0 && Reg.equal b Reg.arg1 ->
        cap_qsign roles addr t
    | a, _ -> bad a "expected XOR computing the quotient sign");
    (match fetch () with
    | addr, Insn.Ldo { imm = 0l; base; t } when Reg.equal base Reg.arg0 ->
        cap_rsign roles addr t
    | a, _ -> bad a "expected the remainder-sign copy of the dividend");
    (match fetch () with
    | _, Insn.Comclr { cond = Cond.Ge; a; b; t }
      when Reg.equal a Reg.arg0 && is0 b && is0 t ->
        ()
    | a, _ -> bad a "expected the dividend sign test");
    (match fetch () with
    | _, Insn.Alu { op = Sub; a; b; t; trap_ov = false }
      when is0 a && Reg.equal b Reg.arg0 && Reg.equal t Reg.arg0 ->
        ()
    | a, _ -> bad a "expected the dividend negation");
    (match fetch () with
    | _, Insn.Comclr { cond = Cond.Ge; a; b; t }
      when Reg.equal a Reg.arg1 && is0 b && is0 t ->
        ()
    | a, _ -> bad a "expected the divisor sign test");
    match fetch () with
    | _, Insn.Alu { op = Sub; a; b; t; trap_ov = false }
      when is0 a && Reg.equal b Reg.arg1 && Reg.equal t Reg.arg1 ->
        ()
    | a, _ -> bad a "expected the divisor negation"
  in
  let expect_core () =
    (match fetch () with
    | _, Insn.Alu { op = Add; a; b; t; trap_ov = false }
      when is0 a && is0 b && is0 t ->
        ()
    | a, _ -> bad a "expected ADD r0,r0,r0 clearing carry and V");
    (match fetch () with
    | addr, Insn.Ldo { imm = 0l; base; t } when Reg.equal base Reg.arg0 ->
        cap_lo roles addr t
    | a, _ -> bad a "expected the dividend copy into the quotient window");
    (match fetch () with
    | addr, Insn.Ldo { imm = 0l; base; t } when is0 base ->
        cap_rem roles addr t
    | a, _ -> bad a "expected the partial-remainder clear");
    for step = 1 to 32 do
      (match fetch () with
      | addr, Insn.Alu { op = Addc; a; b; t; trap_ov = false }
        when Reg.equal a b && Reg.equal b t ->
          same roles addr "lo" (fun r -> r.lo) t;
          ignore step
      | a, _ -> bad a "expected ADDC lo,lo,lo (step %d)" step);
      match fetch () with
      | addr, Insn.Ds { a; b; t } when Reg.equal b Reg.arg1 && Reg.equal a t ->
          same roles addr "rem" (fun r -> r.rem) t
      | a, _ -> bad a "expected DS rem,arg1,rem (step %d)" step
    done;
    (match fetch () with
    | addr, Insn.Alu { op = Addc; a; b; t; trap_ov = false } when is0 a && is0 b
      ->
        cap_qbit roles addr t
    | a, _ -> bad a "expected the final-quotient-bit ADDC");
    (match fetch () with
    | addr, Insn.Alu { op = Shadd 1; a; b; t; trap_ov = false }
      when Reg.equal t Reg.ret0 ->
        same roles addr "lo" (fun r -> r.lo) a;
        same roles addr "qbit" (fun r -> r.qbit) b
    | a, _ -> bad a "expected SH1ADD folding in the final quotient bit");
    (match fetch () with
    | addr, Insn.Comiclr { cond = Cond.Neq; imm = 0l; a; t } when is0 t ->
        same roles addr "qbit" (fun r -> r.qbit) a
    | a, _ -> bad a "expected the negative-remainder nullify");
    (match fetch () with
    | addr, Insn.Alu { op = Add; a; b; t; trap_ov = false }
      when Reg.equal b Reg.arg1 && Reg.equal a t ->
        same roles addr "rem" (fun r -> r.rem) t
    | a, _ -> bad a "expected the remainder correction add");
    match fetch () with
    | addr, Insn.Ldo { imm = 0l; base; t } when Reg.equal t Reg.ret1 ->
        same roles addr "rem" (fun r -> r.rem) base
    | a, _ -> bad a "expected the remainder move to ret1"
  in
  let expect_signed_epilogue () =
    (match fetch () with
    | addr, Insn.Comclr { cond = Cond.Ge; a; b; t } when is0 b && is0 t ->
        same roles addr "qsign" (fun r -> r.qsign) a
    | a, _ -> bad a "expected the quotient sign test");
    (match fetch () with
    | _, Insn.Alu { op = Sub; a; b; t; trap_ov = false }
      when is0 a && Reg.equal b Reg.ret0 && Reg.equal t Reg.ret0 ->
        ()
    | a, _ -> bad a "expected the quotient negation");
    (match fetch () with
    | addr, Insn.Comclr { cond = Cond.Ge; a; b; t } when is0 b && is0 t ->
        same roles addr "rsign" (fun r -> r.rsign) a
    | a, _ -> bad a "expected the remainder sign test");
    match fetch () with
    | _, Insn.Alu { op = Sub; a; b; t; trap_ov = false }
      when is0 a && Reg.equal b Reg.ret1 && Reg.equal t Reg.ret1 ->
        ()
    | a, _ -> bad a "expected the remainder negation"
  in
  match
    let zero_target = expect_zero_check () in
    if signed then expect_signed_prologue ();
    expect_core ();
    if signed then expect_signed_epilogue ();
    if want_rem then begin
      match fetch () with
      | _, Insn.Ldo { imm = 0l; base; t }
        when Reg.equal base Reg.ret1 && Reg.equal t Reg.ret0 ->
          ()
      | a, _ -> bad a "expected the remainder move to ret0"
    end;
    (match fetch () with
    | _, Insn.Bv { x; base; n = false }
      when Reg.equal x Reg.r0 && Reg.equal base Reg.mrp ->
        ()
    | a, _ -> bad a "expected the millicode return");
    (match Cfg.insn cfg zero_target with
    | Insn.Break _ -> ()
    | _ -> bad zero_target "zero-divisor target is not a trap"
    | exception _ -> bad zero_target "zero-divisor target outside the image");
    zero_target
  with
  | zero_target ->
      let show what = function
        | Some r -> Printf.sprintf "%s=r%d" what (Reg.to_int r)
        | None -> Printf.sprintf "%s=-" what
      in
      Reciprocal.Certified
        (Certificate.v
           (Certificate.Divide_step { entry = name; signed })
           [
             Printf.sprintf
               "matched divide-step schema at %d: zero check traps at %d, 32 \
                unrolled ADDC/DS steps, %s%s%s"
               entry zero_target
               (if signed then "signed magnitude prologue/epilogue, " else "")
               (if want_rem then "remainder variant, " else "")
               "consistent role assignment";
             Printf.sprintf "roles: %s %s %s %s %s"
               (show "lo" roles.lo) (show "rem" roles.rem)
               (show "qbit" roles.qbit) (show "qsign" roles.qsign)
               (show "rsign" roles.rsign);
           ])
  | exception Mismatch m ->
      Reciprocal.Unknown (Printf.sprintf "divide-step schema mismatch %s" m)
