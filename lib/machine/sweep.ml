(* Domain-parallel sweep harness.

   The paper's figures are exhaustive operand sweeps (all 16-bit
   multipliers, large divisor grids) and frontier expansions; these are
   embarrassingly parallel with a deterministic merge. This module
   shards an index range across OCaml 5 domains: the range is split into
   [domains] contiguous chunks, the extra domains are spawned first, the
   first chunk runs on the calling domain, and the results are joined
   {e in chunk order} — so the merged result is the same permutation of
   work for any domain count, and deterministic whenever the per-index
   function is.

   Workers must not share mutable state; per-worker context (typically a
   fresh {!Machine.t}) comes from the [make] thunk of {!sweep}, called
   once inside each worker domain. *)

let default_domains () = max 1 (Domain.recommended_domain_count ())

(* Chunk bounds for [n] items over [d] chunks: chunk [i] is
   [lo i, lo (i+1)), sizes differing by at most one. *)
let chunk_lo n d i = i * n / d

let map_ranges ?domains (f : lo:int -> hi:int -> 'a) n : 'a list =
  let d = match domains with Some d -> max 1 d | None -> default_domains () in
  let d = min d (max 1 n) in
  if d = 1 then [ f ~lo:0 ~hi:n ]
  else begin
    let spawned =
      List.init (d - 1) (fun i ->
          let lo = chunk_lo n d (i + 1) and hi = chunk_lo n d (i + 2) in
          Domain.spawn (fun () -> f ~lo ~hi))
    in
    let first = f ~lo:0 ~hi:(chunk_lo n d 1) in
    first :: List.map Domain.join spawned
  end

let map_array ?domains (f : int -> 'a) n : 'a array =
  if n = 0 then [||]
  else begin
    let parts =
      map_ranges ?domains (fun ~lo ~hi -> Array.init (hi - lo) (fun i -> f (lo + i))) n
    in
    Array.concat parts
  end

let sweep ?domains ~(make : unit -> 'ctx) (f : 'ctx -> 'a -> 'b) (xs : 'a array)
    : 'b array =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let parts =
      map_ranges ?domains
        (fun ~lo ~hi ->
          let ctx = make () in
          Array.init (hi - lo) (fun i -> f ctx xs.(lo + i)))
        n
    in
    Array.concat parts
  end
