(** General registers of the HP Precision Architecture.

    Thirty-two 32-bit registers, [r0] hardwired to zero (writes are
    discarded). The conventional software names follow the PA-RISC procedure
    calling convention; the millicode multiply/divide routines of the paper
    use [arg0]/[arg1] for operands, [ret0]/[ret1] for results and [mrp] as
    the millicode return pointer. *)

type t = private int

val of_int : int -> t
(** Raises [Invalid_argument] unless 0 <= n <= 31. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int

val r0 : t
(** Hardwired zero. *)

val rp : t
(** Return pointer, [r2]. *)

val sp : t
(** Stack pointer, [r30]. *)

val arg0 : t (** [r26], first argument. *)

val arg1 : t (** [r25], second argument. *)

val arg2 : t (** [r24]. *)

val arg3 : t (** [r23]. *)

val ret0 : t (** [r28], first result. *)

val ret1 : t (** [r29], second result. *)

val mrp : t
(** Millicode return pointer, [r31]. *)

val t1 : t (** [r1], scratch. *)

val t2 : t (** [r19], scratch. *)

val t3 : t (** [r20], scratch. *)

val t4 : t (** [r21], scratch. *)

val t5 : t (** [r22], scratch. *)

val name : t -> string
(** Canonical name, ["r5"]. *)

val of_name : string -> t option
(** Accepts ["rN"] and the conventional aliases above. *)

val pp : Format.formatter -> t -> unit
val all : t list
