lib/compiler/lower_loop.ml: Builder Cond Emit Expr Hashtbl List Loop_ir Lower Millicode Option Program Reg Strength
