(* Differential coverage for the W64 (double-word) millicode family:
   every entry pinned against the two-word OCaml reference on the
   reference interpreter, the scalar threaded engine, and the batch
   engine, over boundary operands, seeded sweeps and QCheck. *)

module Word = Hppa_word.Word
module Machine = Hppa_machine.Machine
module Batch = Hppa_machine.Machine.Batch
module Trap = Hppa_machine.Trap
module W64 = Hppa_w64
open Hppa

let interp =
  lazy
    (Millicode.machine
       ~config:{ Machine.Config.default with engine = false }
       ())

let scalar = lazy (Millicode.machine ())

let check_on mach label entry x y =
  let got = W64.call (Lazy.force mach) entry ~x ~y in
  let want = W64.reference entry x y in
  if not (W64.outcome_equal got want) then
    Alcotest.failf "%s %s 0x%Lx 0x%Lx = %a want %a" label entry x y
      W64.pp_outcome got W64.pp_outcome want

let check entry x y =
  check_on interp "interp" entry x y;
  check_on scalar "engine" entry x y

(* The issue's boundary set plus a few neighbours. *)
let boundary =
  [
    0L; 1L; 2L; 3L; 0xffffffffL; 0x100000000L; 0x100000001L; 0x7fffffffL;
    0x80000000L; Int64.max_int; Int64.min_int; -1L; -2L; -0x100000000L;
    0x123456789abcdefL; 0xdeadbeefcafebabeL;
  ]

let test_boundary_sweep () =
  List.iter
    (fun entry ->
      List.iter
        (fun x -> List.iter (fun y -> check entry x y) boundary)
        boundary)
    W64.entries

let test_trap_lanes () =
  List.iter
    (fun x ->
      List.iter (fun e -> check e x 0L) [ "divU64w"; "divI64w"; "remU64w"; "remI64w" ])
    [ 0L; 1L; Int64.min_int; -1L; 0x123456789abcdefL ];
  (* Signed quotient overflow: -2^63 / -1 breaks; unsigned does not. *)
  List.iter (fun e -> check e Int64.min_int (-1L)) W64.entries

let seeded_operands n =
  let g = Hppa_dist.Prng.create 0x57364L in
  List.init n (fun _ ->
      let x = Hppa_dist.Prng.next64 g in
      (* Mix full-range and high-word-zero operands so both divide paths
         run. *)
      let y =
        let r = Hppa_dist.Prng.next64 g in
        if Hppa_dist.Prng.bool g ~p:0.5 then Int64.logand r 0xffffffffL
        else r
      in
      (x, y))

let test_seeded_sweep () =
  let pairs = seeded_operands 400 in
  List.iter
    (fun entry -> List.iter (fun (x, y) -> check entry x y) pairs)
    W64.entries

(* Batch engine: every entry over the seeded pairs, trap lanes mixed in,
   each lane pinned against the reference. *)
let test_batch_differential () =
  let pairs =
    seeded_operands 61 @ [ (5L, 0L); (Int64.min_int, -1L); (42L, 7L) ]
  in
  let lanes = List.length pairs in
  let b = Batch.create ~lanes (Millicode.resolved ()) in
  List.iter
    (fun entry ->
      let args =
        Array.of_list (List.map (fun (x, y) -> W64.operands x y) pairs)
      in
      Batch.call b entry ~args;
      List.iteri
        (fun lane (x, y) ->
          let got = W64.batch_outcome b ~lane in
          let want = W64.reference entry x y in
          if not (W64.outcome_equal got want) then
            Alcotest.failf "batch %s lane %d 0x%Lx 0x%Lx = %a want %a" entry
              lane x y W64.pp_outcome got W64.pp_outcome want)
        pairs)
    W64.entries

let arb_i64 =
  let open QCheck in
  let gen =
    Gen.frequency
      [
        (4, Gen.map Int64.of_int Gen.int);
        (3, Gen.map (fun i -> Int64.of_int32 (Int32.of_int i)) Gen.int);
        ( 2,
          Gen.map2
            (fun hi lo ->
              Int64.logor (Int64.shift_left (Int64.of_int hi) 32)
                (Int64.of_int lo))
            (Gen.int_bound 0xffffffff) (Gen.int_bound 0xffffffff) );
        (2, Gen.oneofl boundary);
      ]
  in
  make ~print:(Printf.sprintf "0x%Lx") gen

let prop entry =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s = two-word reference" entry)
    ~count:1000
    (QCheck.pair arb_i64 arb_i64)
    (fun (x, y) ->
      W64.outcome_equal
        (W64.call (Lazy.force scalar) entry ~x ~y)
        (W64.reference entry x y))

let suite =
  [
    ( "w64",
      [
        Alcotest.test_case "boundary sweep (interp + engine)" `Quick
          test_boundary_sweep;
        Alcotest.test_case "trap lanes" `Quick test_trap_lanes;
        Alcotest.test_case "seeded sweep" `Quick test_seeded_sweep;
        Alcotest.test_case "batch engine differential" `Quick
          test_batch_differential;
      ] );
    Util.qsuite "w64.qcheck" (List.map prop W64.entries);
  ]
