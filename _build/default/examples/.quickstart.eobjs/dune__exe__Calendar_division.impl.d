examples/calendar_division.ml: Format Hppa Hppa_machine Hppa_word Int32 List Printf Program Reg
