(* hppa-magic: derive constant-division parameters and code.

   Example:
     hppa-magic 7
     hppa-magic --signed --code 11
     hppa-magic --modern 7 *)

module Word = Hppa_word.Word
module Machine = Hppa_machine.Machine

let show y signed code modern measure =
  let y32 = Int32.of_int y in
  if y land 1 = 1 && y >= 3 then begin
    let range = if signed then 0x8000_0001L else 0x1_0000_0000L in
    let t = Hppa.Div_magic.derive ~range y32 in
    Format.printf "derived method:  %a@." Hppa.Div_magic.pp t
  end;
  if modern then begin
    let m = Hppa.Div_magic_modern.derive y32 in
    Format.printf "round-up method: m=%Lx  p=%d%s%s@." m.m m.p
      (if m.add_fixup then "  (33-bit, needs add fixup)" else "")
      (match Hppa.Div_magic_modern.chain_cost m with
      | Some c -> Printf.sprintf "  chain=%d" c
      | None -> "")
  end;
  let plan =
    if signed then Hppa.Div_const.plan_signed y32
    else Hppa.Div_const.plan_unsigned y32
  in
  Format.printf "strategy: %s (%d static instructions)@."
    (match plan.strategy with
    | Hppa.Div_const.Trivial -> "trivial"
    | Power_of_two k -> Printf.sprintf "power of two (>> %d)" k
    | Reciprocal (p, c) ->
        Printf.sprintf "reciprocal, z=2^%d, chain of %d" p.Hppa.Div_magic.s
          (Hppa.Chain.length c)
    | Even_split (k, _) -> Printf.sprintf "shift %d + odd reciprocal" k
    | General_fallback -> "general divide (fallback)")
    plan.static_instructions;
  (* Certify the plan: recover the reciprocal form from the emitted code
     and discharge the coverage bound over all dividends (no sampling).
     CI gates on the exit code directly. *)
  let prog =
    Program.resolve_exn
      (Program.concat [ plan.source; Hppa.Div_gen.source ])
  in
  let verdict =
    Hppa_verify.Driver.certify_division prog ~entry:plan.entry
      ~claim:{ Hppa_verify.Reciprocal.op = `Div; signed; divisor = y32 }
  in
  Format.printf "certificate: %a@." Hppa_verify.Reciprocal.pp_verdict verdict;
  let cert_failed =
    match verdict with
    | Hppa_verify.Reciprocal.Certified _ -> false
    | Hppa_verify.Reciprocal.Refuted _ | Hppa_verify.Reciprocal.Unknown _ ->
        true
  in
  if code then Format.printf "@,%a@." Program.pp_source plan.source;
  if measure then begin
    let prog =
      Program.resolve_exn (Program.concat [ plan.source; Hppa.Div_gen.source ])
    in
    let mach = Machine.create prog in
    let cycles x =
      match Machine.call_cycles mach plan.entry ~args:[ x ] with
      | Machine.Halted, c -> c
      | (Machine.Trapped _ | Machine.Fuel_exhausted), _ -> -1
    in
    Format.printf "cycles: x=1000 -> %d;  x=-1000 -> %d;  x=max_int -> %d@."
      (cycles 1000l) (cycles (-1000l)) (cycles Int32.max_int)
  end;
  if cert_failed then 1 else 0

open Cmdliner

let y = Arg.(required & pos 0 (some int) None & info [] ~docv:"DIVISOR")
let signed = Arg.(value & flag & info [ "s"; "signed" ] ~doc:"Signed (truncating) division.")
let code = Arg.(value & flag & info [ "c"; "code" ] ~doc:"Print the generated routine.")
let modern =
  Arg.(value & flag & info [ "m"; "modern" ]
         ~doc:"Also derive the modern round-up (Granlund-Montgomery) parameters.")
let measure = Arg.(value & flag & info [ "t"; "time" ] ~doc:"Measure simulated cycles.")

let cmd =
  Cmd.v
    (Cmd.info "hppa-magic" ~doc:"Derive division-by-constant parameters (section 7)")
    Term.(const show $ y $ signed $ code $ modern $ measure)

let () = exit (Cmd.eval' cmd)
