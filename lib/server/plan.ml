(* Reply payloads for the three plan-producing requests. Everything here
   must be a pure function of the request (plus the fuel bound), because
   cached replies are compared byte-for-byte against recomputed ones. *)

module Word = Hppa_word.Word
module Machine = Hppa_machine.Machine
open Hppa

let squash s =
  String.trim
    (String.map (function '\n' | '\r' | '\t' -> ' ' | c -> c) s)

let render_source (src : Program.source) =
  String.concat " | "
    (List.map
       (function
         | Program.Label l -> l ^ ":"
         | Program.Insn i ->
             squash
               (Format.asprintf "%a" (Insn.pp Format.pp_print_string) i))
       src)

let render_chain (c : Chain.t) =
  (* Compact one-line form of the paper's "a2 = 4*a1 + a1" notation. *)
  String.concat ";"
    (List.mapi
       (fun i step ->
         let e = i + 2 in
         match step with
         | Chain.Add (j, k) -> Printf.sprintf "a%d=a%d+a%d" e j k
         | Chain.Shadd (m, j, k) ->
             Printf.sprintf "a%d=%d*a%d+a%d" e (1 lsl m) j k
         | Chain.Sub (j, k) -> Printf.sprintf "a%d=a%d-a%d" e j k
         | Chain.Shl (j, m) -> Printf.sprintf "a%d=a%d<<%d" e j m)
       c)

let mul n =
  let plan = Mul_const.plan n in
  let chain_str =
    match plan.chain with None -> "-" | Some c -> render_chain c
  in
  let steps = match plan.chain with None -> 0 | Some c -> Chain.length c in
  Ok
    (Printf.sprintf
       "MUL n=%ld steps=%d insns=%d cycles=%d temps=%d overflow_safe=%b \
        chain=%s code=%s"
       n steps plan.static_instructions plan.static_instructions
       plan.temporaries
       (match plan.chain with
       | Some c -> Chain.is_overflow_safe c
       | None -> false)
       chain_str
       (render_source plan.source))

let rec render_strategy = function
  | Div_const.Trivial -> "trivial"
  | Div_const.Power_of_two k -> Printf.sprintf "shift:%d" k
  | Div_const.Reciprocal (m, ch) ->
      Printf.sprintf "reciprocal:z=2^%d,a=%Ld,b=%Ld,chain=%d" m.Div_magic.s
        m.Div_magic.a m.Div_magic.b (Chain.length ch)
  | Div_const.Even_split (k, s) ->
      Printf.sprintf "even_split:%d+%s" k (render_strategy s)
  | Div_const.General_fallback -> "general_divU"

let div d =
  if d = 0l then Error "range division by zero"
  else
    let plan =
      if d > 0l then Div_const.plan_unsigned d else Div_const.plan_signed d
    in
    Ok
      (Printf.sprintf
         "DIV d=%ld signed=%b strategy=%s insns=%d cycles=%d \
          needs_millicode=%b code=%s"
         d plan.signed
         (render_strategy plan.strategy)
         plan.static_instructions plan.static_instructions
         (Div_const.needs_millicode plan)
         (render_source plan.source))

let eval mach ~fuel entry args =
  if not (List.mem entry Millicode.entries) then
    Error (Printf.sprintf "entry unknown millicode entry \"%s\"" entry)
  else begin
    Machine.reset mach;
    match Machine.call_cycles ~fuel mach entry ~args with
    | Machine.Halted, cycles ->
        Ok
          (Printf.sprintf "EVAL entry=%s ret0=%ld ret1=%ld cycles=%d engine=%b"
             entry (Machine.get mach Reg.ret0) (Machine.get mach Reg.ret1)
             cycles (Machine.used_engine mach))
    | Machine.Trapped t, _ ->
        Error
          (Printf.sprintf "trap %s: %s" entry
             (Hppa_machine.Trap.to_string t))
    | Machine.Fuel_exhausted, _ ->
        Error (Printf.sprintf "fuel %s exceeded %d cycles" entry fuel)
  end
