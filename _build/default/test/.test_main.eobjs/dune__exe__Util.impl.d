test/util.ml: Alcotest Hppa_machine Hppa_word Int32 List Printf QCheck QCheck_alcotest Reg
