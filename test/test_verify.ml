(* The static verifier: the real millicode library must be clean under
   every analysis, the linear interpreter must certify every multiply
   plan, and each analysis must catch a seeded bad program. *)

module Word = Hppa_word.Word
module V = Hppa_verify
open Util
open Hppa

let pp_findings fs = Format.asprintf "%a" V.Findings.pp_list fs

let check_clean what findings =
  Alcotest.(check bool)
    (what ^ ": " ^ pp_findings findings)
    true (findings = [])

(* --- The library is lint-clean in both models. ------------------------- *)

let test_millicode_plain () = check_clean "plain" (Millicode.lint ())

let test_millicode_scheduled () =
  check_clean "scheduled" (Millicode.lint ~scheduled:true ())

(* The naive transform (every branch nullified) must also be hazard-free:
   its slots are all nops or annulled. *)
let test_millicode_naive () =
  let options =
    { V.Cfg.mode = V.Cfg.Delay_slot; blr_slots = Div_small.threshold }
  in
  match
    V.Driver.check_source ~options ~specs:Millicode.conventions
      ~entries:Millicode.entries
      (Delay.naive Millicode.source)
  with
  | Ok findings -> check_clean "naive" findings
  | Error msg -> Alcotest.fail msg

(* --- Multiply plans: lint + certification, plain and scheduled. -------- *)

let plan_cfg ~scheduled (plan : Mul_const.plan) =
  let src =
    if scheduled then Delay.schedule plan.source else plan.source
  in
  let options =
    if scheduled then V.Cfg.delay else V.Cfg.default
  in
  V.Cfg.make options (Program.resolve_exn src)

let certify_plan ~scheduled plan =
  let cfg = plan_cfg ~scheduled plan in
  let entry = Program.symbol_exn (V.Cfg.program cfg) plan.Mul_const.entry in
  V.Linear.certify cfg ~entry ~multiplier:plan.Mul_const.multiplier

let assert_certified ~overflow ~scheduled n =
  let plan = Mul_const.plan ~overflow n in
  match certify_plan ~scheduled plan with
  | V.Linear.Certified -> ()
  | v ->
      Alcotest.failf "%ld (overflow=%b, scheduled=%b): %a" n overflow scheduled
        V.Linear.pp_verdict v

(* Every plan for 0..4096, both models; overflow variants on a denser
   small range plus the special cases. *)
let test_certify_dense () =
  for n = 0 to 4096 do
    let n32 = Int32.of_int n in
    assert_certified ~overflow:false ~scheduled:false n32;
    assert_certified ~overflow:false ~scheduled:true n32
  done

let test_certify_overflow () =
  for n = 0 to 256 do
    let n32 = Int32.of_int n in
    assert_certified ~overflow:true ~scheduled:false n32;
    assert_certified ~overflow:true ~scheduled:true n32
  done;
  List.iter
    (fun n ->
      assert_certified ~overflow:true ~scheduled:false n;
      assert_certified ~overflow:true ~scheduled:true n)
    [ Int32.min_int; Int32.max_int; -1l; -625l; 0x4000_0000l ]

let certify_random =
  QCheck.Test.make ~name:"random multipliers certify (plain + scheduled)"
    ~count:200 arb_word (fun n ->
      assert_certified ~overflow:false ~scheduled:false n;
      assert_certified ~overflow:false ~scheduled:true n;
      true)

(* Plans also pass the full lint, as millicode-convention routines with a
   single-argument interface. *)
let lint_plan ~scheduled n =
  let plan = Mul_const.plan n in
  let spec =
    {
      V.Cfg.name = plan.entry;
      args = [ Reg.arg0 ];
      results = [ Reg.ret0 ];
      clobbers = V.Cfg.scratch;
    }
  in
  let src = if scheduled then Delay.schedule plan.source else plan.source in
  let options = if scheduled then V.Cfg.delay else V.Cfg.default in
  match
    V.Driver.check_source ~options ~specs:[ spec ] ~entries:[ plan.entry ] src
  with
  | Ok findings -> check_clean (Int32.to_string n) findings
  | Error msg -> Alcotest.fail msg

let test_lint_plans () =
  List.iter
    (fun n ->
      lint_plan ~scheduled:false n;
      lint_plan ~scheduled:true n)
    [ 0l; 1l; 10l; 625l; 1991l; -7l; -625l; Int32.max_int; Int32.min_int ]

(* --- Negative tests: each analysis catches a seeded bad program. ------- *)

let has check fs = List.exists (fun f -> f.V.Findings.check = check) fs

let check_of_bad what check src ~entries =
  match V.Driver.check_source ~entries src with
  | Ok findings ->
      Alcotest.(check bool)
        (what ^ ": " ^ pp_findings findings)
        true
        (has check findings)
  | Error msg -> Alcotest.fail msg

let ret = Emit.ret

let test_bad_use_before_def () =
  (* t2 is never written: the add consumes garbage. *)
  check_of_bad "use-before-def" V.Findings.Use_before_def
    [
      Program.Label "bad";
      Program.Insn (Emit.add Reg.arg0 Reg.t2 Reg.ret0);
      Program.Insn ret;
    ]
    ~entries:[ "bad" ]

let test_bad_psw () =
  (* addc with no carry-establishing instruction before it. *)
  check_of_bad "psw-before-def" V.Findings.Psw_before_def
    [
      Program.Label "bad";
      Program.Insn (Emit.addc Reg.arg0 Reg.arg1 Reg.ret0);
      Program.Insn ret;
    ]
    ~entries:[ "bad" ]

let test_bad_one_path_undefined () =
  (* ret0 defined on the fall-through path only: the taken path returns
     garbage. *)
  check_of_bad "one-path-undefined" V.Findings.Convention
    [
      Program.Label "bad";
      Program.Insn (Emit.comib Cond.Eq 0l Reg.arg0 "bad$out");
      Program.Insn (Emit.copy Reg.arg0 Reg.ret0);
      Program.Label "bad$out";
      Program.Insn ret;
    ]
    ~entries:[ "bad" ]

let test_bad_clobber () =
  (* r5 is callee-saved: writing it breaks every caller. *)
  check_of_bad "clobber" V.Findings.Convention
    [
      Program.Label "bad";
      Program.Insn (Emit.ldo 1l Reg.r0 (Reg.of_int 5));
      Program.Insn (Emit.copy Reg.arg0 Reg.ret0);
      Program.Insn ret;
    ]
    ~entries:[ "bad" ]

let test_bad_dead_write () =
  check_of_bad "dead-write" V.Findings.Dead_write
    [
      Program.Label "bad";
      Program.Insn (Emit.ldo 7l Reg.r0 Reg.t2);
      Program.Insn (Emit.copy Reg.arg0 Reg.ret0);
      Program.Insn ret;
    ]
    ~entries:[ "bad" ]

let test_bad_structure () =
  (* bv through a non-link register is unresolvable. *)
  check_of_bad "indirect" V.Findings.Structure
    [
      Program.Label "bad";
      Program.Insn (Emit.copy Reg.arg0 Reg.ret0);
      Program.Insn (Emit.bv Reg.r0 Reg.arg1);
    ]
    ~entries:[ "bad" ]

let delay_check src =
  match
    Result.map
      (fun p -> V.Hazards.check (V.Cfg.make V.Cfg.delay p))
      (Program.resolve src)
  with
  | Ok fs -> fs
  | Error msg -> Alcotest.fail msg

let test_bad_hazard_branch_in_slot () =
  let fs =
    delay_check
      [
        Program.Label "bad";
        Program.Insn (Insn.B { target = "bad"; n = false });
        Program.Insn (Insn.B { target = "bad"; n = true });
        Program.Insn (Insn.Nop);
      ]
  in
  Alcotest.(check bool)
    ("branch in slot: " ^ pp_findings fs)
    true
    (has V.Findings.Delay_hazard fs)

let test_bad_hazard_nullifier_before_branch () =
  (* A filled branch in a nullifier's shadow: annulment would skip the
     branch but its hoisted slot instruction would still execute. *)
  let fs =
    delay_check
      [
        Program.Label "bad";
        Program.Insn (Emit.comclr Cond.Eq Reg.arg0 Reg.arg1 Reg.r0);
        Program.Insn (Insn.B { target = "bad"; n = false });
        Program.Insn (Emit.copy Reg.arg0 Reg.ret0);
      ]
  in
  Alcotest.(check bool)
    ("nullifier before filled branch: " ^ pp_findings fs)
    true
    (has V.Findings.Delay_hazard fs)

let test_hazard_accepts_annulled_idiom () =
  (* The legitimate scheduled loop idiom: a nullifier immediately before
     a ,n branch must NOT be flagged. *)
  let fs =
    delay_check
      [
        Program.Label "ok";
        Program.Insn (Emit.extru ~cond:Cond.Neq Reg.arg0 ~pos:4 ~len:28 Reg.arg0);
        Program.Insn (Insn.B { target = "ok"; n = true });
        Program.Insn Insn.Nop;
      ]
  in
  check_clean "annulled idiom" fs

let test_bad_certify () =
  (* A correct routine checked against the wrong constant refutes. *)
  let plan = Mul_const.plan 10l in
  let cfg = plan_cfg ~scheduled:false plan in
  let entry = Program.symbol_exn (V.Cfg.program cfg) plan.entry in
  match V.Linear.certify cfg ~entry ~multiplier:12l with
  | V.Linear.Refuted _ -> ()
  | v -> Alcotest.failf "expected refutation, got %a" V.Linear.pp_verdict v

(* --- Division plans: the reciprocal certifier (§7). -------------------- *)

(* Plans may tail-call the general divide; link Div_gen so every entry
   resolves. *)
let div_prog (plan : Div_const.plan) =
  Program.resolve_exn
    (Program.concat [ plan.Div_const.source; Div_gen.source ])

let div_claim ?(op = `Div) ~signed d = { V.Reciprocal.op; signed; divisor = d }

let assert_div_certified what verdict =
  match verdict with
  | V.Reciprocal.Certified _ -> ()
  | v -> Alcotest.failf "%s: %a" what V.Reciprocal.pp_verdict v

let assert_div_refuted what verdict =
  match verdict with
  | V.Reciprocal.Refuted _ -> ()
  | v ->
      Alcotest.failf "%s: expected refutation, got %a" what
        V.Reciprocal.pp_verdict v

let certify_div_plan what (plan : Div_const.plan) claim =
  assert_div_certified what
    (V.Driver.certify_division (div_prog plan) ~entry:plan.Div_const.entry
       ~claim)

let test_div_certify_figure6 () =
  List.iter
    (fun (t : Div_magic.t) ->
      certify_div_plan
        (Printf.sprintf "figure6 y=%ld" t.Div_magic.y)
        (Div_const.plan_unsigned t.Div_magic.y)
        (div_claim ~signed:false t.Div_magic.y))
    (Div_magic.figure6 ())

(* Every emitted shape — reciprocal, power of two, even split, general
   fallback, remainder multiply-back, signed fixups — proves without a
   single sampled dividend. *)
let test_div_certify_sweep () =
  for d = 1 to 64 do
    let d32 = Int32.of_int d in
    List.iter
      (fun (what, plan, claim) -> certify_div_plan
          (Printf.sprintf "%s %d" what d) plan claim)
      [
        ("divu", Div_const.plan_unsigned d32, div_claim ~signed:false d32);
        ("divi", Div_const.plan_signed d32, div_claim ~signed:true d32);
        ( "divi-neg",
          Div_const.plan_signed (Int32.neg d32),
          div_claim ~signed:true (Int32.neg d32) );
        ( "remu",
          Div_const.plan_rem_unsigned d32,
          div_claim ~op:`Rem ~signed:false d32 );
        ( "remi",
          Div_const.plan_rem_signed d32,
          div_claim ~op:`Rem ~signed:true d32 );
      ]
  done

(* Corrupt one instruction of a correct plan; the certifier must find a
   concrete boundary dividend that disagrees, not just fail to prove. *)
let corrupt_first f src =
  let hit = ref false in
  let src' =
    List.map
      (function
        | Program.Insn i when not !hit -> (
            match f i with
            | Some i' ->
                hit := true;
                Program.Insn i'
            | None -> Program.Insn i)
        | x -> x)
      src
  in
  if not !hit then Alcotest.fail "corruption pattern matched nothing";
  src'

let certify_corrupted (plan : Div_const.plan) f claim =
  let prog =
    Program.resolve_exn
      (Program.concat [ corrupt_first f plan.Div_const.source; Div_gen.source ])
  in
  V.Driver.certify_division prog ~entry:plan.Div_const.entry ~claim

let test_div_certify_corrupted () =
  (* Off-by-one magic addend: the a*(x+1) increment becomes x+2. *)
  assert_div_refuted "divu7 addi 1 -> 2"
    (certify_corrupted (Div_const.plan_unsigned 7l)
       (function
         | Insn.Addi ({ imm = 1l; _ } as a) ->
             Some (Insn.Addi { a with imm = 2l })
         | _ -> None)
       (div_claim ~signed:false 7l));
  (* Short shift: the final right shift drops one bit too few (still a
     shift — pos + len stays 32 — but by the wrong amount). *)
  assert_div_refuted "divu9 short shift"
    (certify_corrupted (Div_const.plan_unsigned 9l)
       (function
         | Insn.Extr ({ signed = false; pos; len; _ } as e)
           when pos > 0 && pos + len = 32 ->
             Some (Insn.Extr { e with pos = pos - 1; len = len + 1 })
         | _ -> None)
       (div_claim ~signed:false 9l));
  (* A correct routine checked against the wrong divisor refutes. *)
  let plan = Div_const.plan_unsigned 7l in
  assert_div_refuted "divu7 claimed as /9"
    (V.Driver.certify_division (div_prog plan) ~entry:plan.Div_const.entry
       ~claim:(div_claim ~signed:false 9l))

(* The variable-divisor millicode: divide-step schema certificates. *)
let test_divstep_certified () =
  let prog = Program.resolve_exn Millicode.source in
  List.iter
    (fun (entry, signed, want_rem) ->
      match V.Driver.certify_divstep prog ~entry ~signed ~want_rem with
      | V.Reciprocal.Certified _ -> ()
      | v -> Alcotest.failf "%s: %a" entry V.Reciprocal.pp_verdict v)
    [
      ("divU", false, false);
      ("divI", true, false);
      ("remU", false, true);
      ("remI", true, true);
    ]

(* The §7 vectored dispatchers: total over the declared divisor set,
   every arm certified. *)
let test_dispatch_certified () =
  let options =
    { V.Cfg.mode = V.Cfg.Simple; blr_slots = Div_small.threshold }
  in
  let prog = Program.resolve_exn Millicode.source in
  List.iter
    (fun (entry, signed) ->
      match V.Driver.certify_dispatch ~options prog ~entry ~signed with
      | V.Reciprocal.Certified _ -> ()
      | v -> Alcotest.failf "%s: %a" entry V.Reciprocal.pp_verdict v)
    [ ("divU_small", false); ("divI_small", true) ]

(* An absent entry label is a structured Structure finding, not a bare
   Unknown. *)
let test_certify_findings_missing_entry () =
  let plan = Mul_const.plan 10l in
  let prog = Program.resolve_exn plan.Mul_const.source in
  let verdict, findings =
    V.Driver.certify_findings prog ~entry:"no_such_entry" ~multiplier:10l
  in
  (match verdict with
  | V.Linear.Unknown _ -> ()
  | v -> Alcotest.failf "expected unknown, got %a" V.Linear.pp_verdict v);
  match findings with
  | [ f ] ->
      Alcotest.(check bool) "structure finding" true
        (f.V.Findings.check = V.Findings.Structure);
      Alcotest.(check (option string))
        "names the entry" (Some "no_such_entry") f.V.Findings.routine
  | fs -> Alcotest.failf "expected one finding, got %s" (pp_findings fs)

(* --- The register-pair rule (W64 family). ------------------------------ *)

let pairs_findings ~spec src =
  match Program.resolve src with
  | Error msg -> Alcotest.fail msg
  | Ok prog ->
      let flat =
        {
          V.Cfg.name = "bad";
          args = [ Reg.arg0; Reg.arg1; Reg.arg2; Reg.arg3 ];
          results = [ Reg.ret0; Reg.ret1 ];
          clobbers = V.Cfg.scratch;
        }
      in
      V.Pairs.check (V.Cfg.make ~specs:[ flat ] V.Cfg.default prog) ~spec

let pair_spec ?(args = []) ?(results = []) () =
  { V.Pairs.name = "bad"; arg_pairs = args; result_pairs = results }

let check_pair_finding what fs =
  Alcotest.(check bool)
    (what ^ ": " ^ pp_findings fs)
    true (has V.Findings.Pair fs)

(* The real library's pair view is clean under the rule directly (the
   lint tests above run it as part of the full suite). *)
let test_pairs_millicode_clean () =
  let cfg =
    V.Cfg.make ~specs:Millicode.conventions V.Cfg.default
      (Millicode.resolved ())
  in
  List.iter
    (fun spec -> check_clean spec.V.Pairs.name (V.Pairs.check cfg ~spec))
    Millicode.pair_conventions

let test_pairs_bad_slot () =
  (* (arg1:arg2) spans two canonical slots: not a pair the convention
     allows. *)
  check_pair_finding "non-canonical slot"
    (pairs_findings
       ~spec:(pair_spec ~args:[ (Reg.arg1, Reg.arg2) ] ())
       [
         Program.Label "bad";
         Program.Insn (Emit.add Reg.arg1 Reg.arg2 Reg.ret0);
         Program.Insn ret;
       ])

let test_pairs_bad_result_path () =
  (* The taken path returns with only the high word of (ret0:ret1)
     defined. *)
  check_pair_finding "result half undefined on one path"
    (pairs_findings
       ~spec:
         (pair_spec
            ~args:[ (Reg.arg0, Reg.arg1) ]
            ~results:[ (Reg.ret0, Reg.ret1) ]
            ())
       [
         Program.Label "bad";
         Program.Insn (Emit.copy Reg.arg0 Reg.ret0);
         Program.Insn (Emit.comib Cond.Eq 0l Reg.arg1 "bad$out");
         Program.Insn (Emit.copy Reg.arg1 Reg.ret1);
         Program.Label "bad$out";
         Program.Insn ret;
       ])

let test_pairs_bad_unread_half () =
  (* A routine that never reads arg3 has almost certainly swapped the
     (hi:lo) order of its second operand. *)
  check_pair_finding "argument half never read"
    (pairs_findings
       ~spec:
         (pair_spec
            ~args:[ (Reg.arg0, Reg.arg1); (Reg.arg2, Reg.arg3) ]
            ~results:[ (Reg.ret0, Reg.ret1) ]
            ())
       [
         Program.Label "bad";
         Program.Insn (Emit.add Reg.arg0 Reg.arg2 Reg.ret0);
         Program.Insn (Emit.copy Reg.arg1 Reg.ret1);
         Program.Insn ret;
       ])

(* --- Body equivalence (the W64 certificate). --------------------------- *)

let w64_entries = [ "mulU128"; "mulI128"; "divU64w"; "divI64w"; "remU64w"; "remI64w" ]

(* The candidate the server runs is the library linked behind a wrapper
   at a different base address: prepending an unrelated routine shifts
   every target, which the walk's offset map must absorb. The walk also
   transits mul_final's vectored case table. *)
let test_body_equiv_certified () =
  let canonical = Millicode.resolved () in
  let shifted =
    Program.resolve_exn
      (Program.concat
         [
           [
             Program.Label "pad";
             Program.Insn (Emit.copy Reg.arg0 Reg.ret0);
             Program.Insn ret;
           ];
           Millicode.source;
         ])
  in
  List.iter
    (fun entry ->
      match V.Driver.certify_body ~canonical shifted ~entry with
      | V.Reciprocal.Certified c ->
          Alcotest.(check string)
            (entry ^ " kind") "body_equiv"
            (V.Certificate.kind_label c.V.Certificate.kind)
      | v -> Alcotest.failf "%s: %a" entry V.Reciprocal.pp_verdict v)
    w64_entries

let test_body_equiv_refuted () =
  let canonical = Millicode.resolved () in
  let prog = Millicode.resolved () in
  let addr = Program.symbol_exn prog "mulU128" in
  prog.Program.code.(addr + 2) <- Insn.Break { code = 99 };
  match V.Driver.certify_body ~canonical prog ~entry:"mulU128" with
  | V.Reciprocal.Refuted _ -> ()
  | v -> Alcotest.failf "corrupted image: %a" V.Reciprocal.pp_verdict v

let test_body_equiv_unknown_entry () =
  let canonical = Millicode.resolved () in
  match
    V.Driver.certify_body ~canonical (Millicode.resolved ())
      ~entry:"no_such_entry"
  with
  | V.Reciprocal.Unknown _ -> ()
  | v -> Alcotest.failf "missing entry: %a" V.Reciprocal.pp_verdict v

(* --- Insn.reads contract pin (see insn.mli). --------------------------- *)

let test_reads_duplicates () =
  let reg = Alcotest.testable Reg.pp Reg.equal in
  Alcotest.(check (list reg))
    "add r5, r5, t lists r5 twice" [ Reg.of_int 5; Reg.of_int 5 ]
    (Insn.reads (Emit.add (Reg.of_int 5) (Reg.of_int 5) Reg.t2));
  Alcotest.(check (list reg))
    "reads_distinct dedupes, keeping order" [ Reg.of_int 5 ]
    (Insn.reads_distinct (Emit.add (Reg.of_int 5) (Reg.of_int 5) Reg.t2));
  Alcotest.(check (list reg))
    "bv r0(rp) reads both operand positions" [ Reg.r0; Reg.rp ]
    (Insn.reads Emit.ret);
  Alcotest.(check (list reg))
    "distinct preserves first-occurrence order" [ Reg.arg0; Reg.arg1 ]
    (Insn.reads_distinct (Emit.add Reg.arg0 Reg.arg1 Reg.ret0))

let suite =
  [
    ( "verify.millicode",
      [
        Alcotest.test_case "plain image is clean" `Quick test_millicode_plain;
        Alcotest.test_case "scheduled image is clean" `Quick
          test_millicode_scheduled;
        Alcotest.test_case "naive image is clean" `Quick test_millicode_naive;
      ] );
    ( "verify.certify",
      [
        Alcotest.test_case "plans 0..4096 certify (both models)" `Slow
          test_certify_dense;
        Alcotest.test_case "overflow plans certify" `Quick
          test_certify_overflow;
        Alcotest.test_case "representative plans pass the full lint" `Quick
          test_lint_plans;
      ] );
    qsuite "verify.certify.random" [ certify_random ];
    ( "verify.certify.div",
      [
        Alcotest.test_case "figure6 rows certify" `Quick
          test_div_certify_figure6;
        Alcotest.test_case "divisors 1..64, all five shapes" `Slow
          test_div_certify_sweep;
        Alcotest.test_case "corrupted magic constants refuted" `Quick
          test_div_certify_corrupted;
        Alcotest.test_case "divide-step millicode certifies" `Quick
          test_divstep_certified;
        Alcotest.test_case "small-divisor dispatch certifies" `Quick
          test_dispatch_certified;
        Alcotest.test_case "missing entry is a structured finding" `Quick
          test_certify_findings_missing_entry;
      ] );
    ( "verify.negative",
      [
        Alcotest.test_case "use before def" `Quick test_bad_use_before_def;
        Alcotest.test_case "carry before def" `Quick test_bad_psw;
        Alcotest.test_case "result undefined on one path" `Quick
          test_bad_one_path_undefined;
        Alcotest.test_case "callee-saved clobber" `Quick test_bad_clobber;
        Alcotest.test_case "dead write" `Quick test_bad_dead_write;
        Alcotest.test_case "indirect branch" `Quick test_bad_structure;
        Alcotest.test_case "branch in delay slot" `Quick
          test_bad_hazard_branch_in_slot;
        Alcotest.test_case "nullifier before filled branch" `Quick
          test_bad_hazard_nullifier_before_branch;
        Alcotest.test_case "annulled-branch idiom accepted" `Quick
          test_hazard_accepts_annulled_idiom;
        Alcotest.test_case "wrong multiplier refuted" `Quick test_bad_certify;
      ] );
    ( "verify.pairs",
      [
        Alcotest.test_case "millicode pair view is clean" `Quick
          test_pairs_millicode_clean;
        Alcotest.test_case "non-canonical pair slot" `Quick
          test_pairs_bad_slot;
        Alcotest.test_case "result half undefined on one path" `Quick
          test_pairs_bad_result_path;
        Alcotest.test_case "argument half never read" `Quick
          test_pairs_bad_unread_half;
      ] );
    ( "verify.body_equiv",
      [
        Alcotest.test_case "w64 entries certify against the library" `Quick
          test_body_equiv_certified;
        Alcotest.test_case "corrupted body refuted" `Quick
          test_body_equiv_refuted;
        Alcotest.test_case "missing entry is unknown" `Quick
          test_body_equiv_unknown_entry;
      ] );
    ( "verify.insn",
      [
        Alcotest.test_case "reads enumerates operand positions" `Quick
          test_reads_duplicates;
      ] );
  ]
