module Word = Hppa_word.Word

(* Frame layout (relative to sp, which Machine.call leaves pointing at
   scratch memory): mulU64 uses bytes 0..23, mulI64 nests at 24..35. *)
let mulU64_source =
  let b = Builder.create ~prefix:"mulU64" () in
  let sp = Reg.sp in
  Builder.label b "mulU64";
  Builder.insns b
    [
      Emit.stw Reg.mrp 0l sp;
      Emit.stw Reg.arg0 4l sp;
      Emit.stw Reg.arg1 8l sp;
    ];
  (* The four 16x16 partial products through the standard multiply: both
     operands are below 2^16, the fastest Figure-5 regime. *)
  let partial ~xpos ~ypos ~save =
    Builder.insns b
      [
        Emit.ldw 4l sp Reg.arg0;
        Emit.ldw 8l sp Reg.arg1;
        Emit.extru Reg.arg0 ~pos:xpos ~len:16 Reg.arg0;
        Emit.extru Reg.arg1 ~pos:ypos ~len:16 Reg.arg1;
        Emit.bl "mul_final" Reg.mrp;
      ];
    match save with
    | Some disp -> Builder.insn b (Emit.stw Reg.ret0 disp sp)
    | None -> ()
  in
  partial ~xpos:0 ~ypos:0 ~save:(Some 12l) (* ll *);
  partial ~xpos:16 ~ypos:0 ~save:(Some 16l) (* hl *);
  partial ~xpos:0 ~ypos:16 ~save:(Some 20l) (* lh *);
  partial ~xpos:16 ~ypos:16 ~save:None (* hh stays in ret0 *);
  Builder.insns b
    [
      (* mid = hl + lh (33 bits: carry into t5). *)
      Emit.ldw 16l sp Reg.t2;
      Emit.ldw 20l sp Reg.t3;
      Emit.add Reg.t2 Reg.t3 Reg.t4;
      Emit.addc Reg.r0 Reg.r0 Reg.t5;
      (* lo = ll + (mid << 16); its carry feeds the high word. *)
      Emit.ldw 12l sp Reg.t2;
      Emit.zdep Reg.t4 ~pos:16 ~len:16 Reg.t3;
      Emit.add Reg.t2 Reg.t3 Reg.t3;
      (* hi = hh + carry + (mid >> 16) + (midcarry << 16). *)
      Emit.addc Reg.ret0 Reg.r0 Reg.ret1;
      Emit.shr_u Reg.t4 16 Reg.t4;
      Emit.add Reg.ret1 Reg.t4 Reg.ret1;
      Emit.zdep Reg.t5 ~pos:16 ~len:16 Reg.t5;
      Emit.add Reg.ret1 Reg.t5 Reg.ret1;
      Emit.copy Reg.t3 Reg.ret0;
      Emit.ldw 0l sp Reg.mrp;
      Emit.mret;
    ];
  Builder.to_source b

let mulI64_source =
  let b = Builder.create ~prefix:"mulI64" () in
  let sp = Reg.sp in
  Builder.label b "mulI64";
  Builder.insns b
    [
      Emit.stw Reg.mrp 24l sp;
      Emit.stw Reg.arg0 28l sp;
      Emit.stw Reg.arg1 32l sp;
      Emit.bl "mulU64" Reg.mrp;
      (* Signed correction: hi -= (x < 0 ? y : 0) + (y < 0 ? x : 0). *)
      Emit.ldw 28l sp Reg.t2;
      Emit.ldw 32l sp Reg.t3;
      Emit.comclr Cond.Ge Reg.t2 Reg.r0 Reg.r0;
      Emit.sub Reg.ret1 Reg.t3 Reg.ret1;
      Emit.comclr Cond.Ge Reg.t3 Reg.r0 Reg.r0;
      Emit.sub Reg.ret1 Reg.t2 Reg.ret1;
      Emit.ldw 24l sp Reg.mrp;
      Emit.mret;
    ];
  Builder.to_source b

let source = Program.concat [ mulU64_source; mulI64_source ]
let entries = [ "mulU64"; "mulI64" ]

let reference_unsigned = Word.mul_wide_u
let reference_signed = Word.mul_wide_s
