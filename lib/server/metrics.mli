(** Request metrics: counters and a latency histogram.

    Thread-safe (one mutex); recorded by the connection handlers and
    read by [STATS] and the shutdown dump. Latencies go into
    power-of-two microsecond buckets, so percentiles are bucket upper
    bounds — coarse but allocation-free and mergeable. *)

type t

val create : unit -> t
val reset : t -> unit

val record : t -> error:bool -> us:float -> unit
(** Count one request with its handling latency in microseconds. *)

val requests : t -> int
val errors : t -> int

val percentile_us : t -> float -> float
(** [percentile_us t 0.99]: upper bound (in microseconds) of the bucket
    containing that quantile; 0 when nothing was recorded. *)

val render : t -> string
(** ["requests=... errors=... p50_us=... p99_us=..."] — the metrics part
    of the [STATS] payload. *)

val pp_dump : Format.formatter -> t -> unit
(** Multi-line human dump (shutdown report): counters plus the non-empty
    histogram buckets. *)
