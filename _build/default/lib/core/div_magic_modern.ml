module Word = Hppa_word.Word
module U128 = Hppa_word.U128

type t = { d : int32; m : int64; p : int; add_fixup : bool }

let derive d =
  if Word.le_u d 1l then invalid_arg "Div_magic_modern.derive: divisor must be >= 2";
  let d64 = Word.to_int64_u d in
  (* Smallest p >= 32 with ceiling error e = m*d - 2^p at most 2^(p-32):
     then q = floor(m*x / 2^p) is exact for every x < 2^32. *)
  let rec go p =
    if p > 63 then invalid_arg "Div_magic_modern.derive: no p found"
    else
      let z = Int64.shift_left 1L p in
      let m = Int64.div (Int64.add z (Int64.sub d64 1L)) d64 in
      let e = Int64.sub (Int64.mul m d64) z in
      if e <= Int64.shift_left 1L (p - 32) then
        { d; m; p; add_fixup = m >= 0x1_0000_0000L }
      else go (p + 1)
  in
  go 32

let eval t x =
  let x64 = Word.to_int64_u x in
  if not t.add_fixup then
    let prod = U128.mul_64_64 t.m x64 in
    Word.of_int64 (U128.to_int64 (U128.shift_right prod t.p))
  else begin
    (* m = 2^32 + m'; the standard fixup sequence with 32-bit values:
       t = hi(m' * x); q = ((x - t) >> 1) + t; result = q >> (p - 33). *)
    let m' = Int64.logand t.m 0xffff_ffffL in
    let hi = Int64.shift_right_logical (Int64.mul m' x64) 32 in
    let q =
      Int64.add (Int64.shift_right_logical (Int64.sub x64 hi) 1) hi
    in
    Word.of_int64 (Int64.shift_right_logical q (t.p - 33))
  end

let chain_cost t =
  if t.add_fixup then None
  else
    match Chain_rules.find (Int64.to_int t.m) with
    | Some chain
      when (match Chain.values chain with
           | Ok vs -> Array.for_all (fun v -> v >= 0 && v < 1 lsl 32) vs
           | Error _ -> false) ->
        Some (Chain.length chain)
    | Some _ | None -> None
