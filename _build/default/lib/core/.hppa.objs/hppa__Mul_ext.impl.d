lib/core/mul_ext.ml: Builder Cond Emit Hppa_word Program Reg
