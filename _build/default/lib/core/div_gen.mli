(** The general-purpose division millicode (§4, §7).

    Built from the two-instruction divide step the architecture retained:
    [ADDC] shifts the dividend/quotient window while [DS] performs one bit
    of non-restoring division on the partial remainder, repeated 32 times.
    Like HP's millicode, the loop is fully unrolled; with the corrections
    the dynamic path is in the 75–90 cycle band the paper summarises as
    "about 80 cycles for the general-purpose divide routine".

    Entries (dividend [arg0], divisor [arg1]):
    - [divU]: unsigned; quotient in [ret0], remainder in [ret1].
    - [divI]: signed, truncating toward zero; both results, remainder takes
      the dividend's sign (C semantics).
    - [remU], [remI]: remainder in [ret0].

    Division by zero executes [BREAK 0] (the divide-by-zero trap
    convention). [divI min_int (-1)] wraps to [min_int] like the C
    behaviour on this machine. *)

val source : Program.source
val entries : string list
(** [["divU"; "divI"; "remU"; "remI"]]. *)

val reference_unsigned : Hppa_word.Word.t -> Hppa_word.Word.t -> Hppa_word.Word.t * Hppa_word.Word.t
(** Quotient and remainder; raises [Division_by_zero]. *)

val reference_signed : Hppa_word.Word.t -> Hppa_word.Word.t -> Hppa_word.Word.t * Hppa_word.Word.t
