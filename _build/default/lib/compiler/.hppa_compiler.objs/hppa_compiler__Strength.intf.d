lib/compiler/strength.mli: Loop_ir
