(** Execution statistics.

    The paper's central metric is the dynamic count of single-cycle
    instructions along the executed path; {!cycles} is that count, with
    nullified instructions (skipped by [COMCLR]) costing their cycle as on
    the real pipeline. *)

type t

val create : unit -> t
val reset : t -> unit

val record : t -> nullified:bool -> mnemonic:string -> unit
val record_branch_taken : t -> unit

val add_executed : t -> mnemonic:string -> int -> unit
(** Bulk {!record}: credit [n] executed instructions to one mnemonic at
    once. The threaded engine ({!Engine}) counts per-mnemonic locally
    during a run and settles here on exit, so the histogram matches the
    per-instruction interpreter exactly at a fraction of the cost. *)

val add_nullified : t -> int -> unit
val add_branches_taken : t -> int -> unit

val cycles : t -> int
(** Executed + nullified instructions. *)

val executed : t -> int
val nullified : t -> int
val branches_taken : t -> int

val by_mnemonic : t -> (string * int) list
(** Executed-instruction histogram, most frequent first. *)

val diff : before:t -> after:t -> int
(** Cycle delta; both arguments may be the same mutable value snapshotted
    with {!snapshot}. *)

val snapshot : t -> t
val pp : Format.formatter -> t -> unit
