(** A worker pool of OCaml 5 domains.

    [create ~workers ~init ()] spawns [workers] domains; each builds its
    own private context with [init] (for this service: a fresh millicode
    machine, so no two requests ever share mutable simulator state).
    {!submit} enqueues a job and blocks the calling thread until a worker
    has run it, returning the job's value — or re-raising the exception
    the job raised, on the submitter's stack.

    Jobs are picked up in FIFO order but may complete in any order across
    workers; nothing a job computes may depend on which worker runs it
    (the plan functions are pure, so the reply bytes cannot). *)

type 'ctx t

val create :
  ?obs:Hppa_obs.Obs.Registry.t ->
  ?obs_labels:(string * string) list ->
  workers:int -> init:(unit -> 'ctx) -> unit -> 'ctx t
(** [workers >= 1], else [Invalid_argument]. With [?obs], the pool
    registers [hppa_pool_jobs_total], [hppa_pool_job_exceptions_total],
    a queue-wait histogram [hppa_pool_wait_us] (submit to job start) and
    a live [hppa_pool_queue_depth] gauge, all under [obs_labels]
    (default none) — several pools (e.g. one per cache shard) can share
    a registry by labelling themselves apart. *)

val workers : 'ctx t -> int

val submit : 'ctx t -> ('ctx -> 'a) -> 'a
(** Blocking; safe to call from any thread or domain. Raises
    [Invalid_argument] after {!shutdown}. *)

val post : 'ctx t -> ('ctx -> unit) -> unit
(** Fire-and-forget: enqueue a job and return immediately — the async
    serving path's shard dispatch, where the event loop must never
    block. The job must deliver its own result (e.g. via a completion
    queue); an exception it raises is swallowed (counted on
    [hppa_pool_job_exceptions_total] when instrumented). Raises
    [Invalid_argument] after {!shutdown}. *)

val shutdown : 'ctx t -> unit
(** Drain: runs every job already queued, then joins all workers.
    Idempotent. Subsequent {!submit}s are refused. *)
