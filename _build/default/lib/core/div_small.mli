(** Runtime dispatch for small variable divisors (§7 "Performance").

    The paper reports that "divisions using variable divisors less than
    twenty vary from ten to 36 cycles": when the divisor is only known at
    run time but happens to be small, a vectored branch selects the
    constant-divisor routine for that value; anything else (or zero) goes
    to the general millicode divide.

    Entries ([arg0] dividend, [arg1] divisor, quotient in [ret0]):
    - [divU_small]: unsigned;
    - [divI_small]: signed, dispatching on divisors 1..19 (negative or
      large divisors use the general [divI]).

    The generated source includes the per-divisor routines
    ([divu_c1 .. divu_c19], [divi_c1 .. divi_c19]) and must be linked with
    {!Div_gen.source} for the fallback paths. *)

val source : Program.source
val entries : string list
(** [["divU_small"; "divI_small"]]. *)

val threshold : int
(** Divisors strictly below this (= 20) take the fast path. *)
