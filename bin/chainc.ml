(* hppa-chainc: search multiply-by-constant chains and emit code.

   Example:
     hppa-chainc 625
     hppa-chainc --overflow --code 31
     hppa-chainc --exhaustive 59 *)

module Word = Hppa_word.Word
module Machine = Hppa_machine.Machine

let show n overflow exhaustive code verify no_engine plan certified =
  let n32 = Int32.of_int n in
  if plan || certified then begin
    (* The kernel-strategy view: every applicable strategy with its cost
       or rejection reason, and which one the selector picks. *)
    let req = Hppa_plan.Strategy.mul_const ~trap_overflow:overflow n32 in
    match Hppa_plan.Selector.choose ~require_certified:certified req with
    | Ok choice ->
        Format.printf "%a@." Hppa_plan.Selector.pp_choice choice
    | Error msg -> Format.printf "plan: %s@." msg
  end;
  let chain =
    if exhaustive then Hppa.Chain_search.find ~max_len:6 (abs n)
    else
      Hppa.Chain_rules.find
        ~mode:(if overflow then Hppa.Chain_rules.Monotonic else Hppa.Chain_rules.Fast)
        (abs n)
  in
  (match chain with
  | None -> Format.printf "%d: no chain found within the search bounds@." n
  | Some c ->
      Format.printf "@[<v>chain for %d (%d step%s%s):@,%a@]@." (abs n)
        (Hppa.Chain.length c)
        (if Hppa.Chain.length c = 1 then "" else "s")
        (if Hppa.Chain.is_overflow_safe c then ", overflow-safe" else "")
        Hppa.Chain.pp c);
  if code || verify then begin
    let plan = Hppa.Mul_const.plan ~overflow n32 in
    if code then
      Format.printf "@,%a@.(%d instruction%s, %d temporar%s)@."
        Program.pp_source plan.source plan.static_instructions
        (if plan.static_instructions = 1 then "" else "s")
        plan.temporaries
        (if plan.temporaries = 1 then "y" else "ies");
    if verify then begin
      let prog = Program.resolve_exn plan.source in
      (* Static pass: lint the routine and certify the abstract result
         for every input at once; the simulator sweep below then spot
         checks the same claim dynamically. *)
      let findings =
        Hppa_verify.Driver.check ~entries:[ plan.entry ] prog
      in
      if findings <> [] then
        Format.printf "@[<v>static lint:@,%a@]@."
          Hppa_verify.Findings.pp_list findings
      else Format.printf "static lint: clean@.";
      Format.printf "static certification: %a@." Hppa_verify.Linear.pp_verdict
        (Hppa_verify.Driver.certify prog ~entry:plan.entry ~multiplier:n32);
      let config =
        { Machine.Config.default with engine = not no_engine }
      in
      let mach = Machine.create ~config prog in
      let bad = ref 0 in
      for x = -1000 to 1000 do
        let xw = Word.of_int x in
        match Machine.call mach plan.entry ~args:[ xw ] with
        | Machine.Halted ->
            if not (Word.equal (Machine.get mach Reg.ret0) (Word.mul_lo xw n32))
            then incr bad
        | Machine.Trapped _ when overflow && Word.mul_overflows_s xw n32 -> ()
        | Machine.Trapped _ | Machine.Fuel_exhausted -> incr bad
      done;
      Format.printf "simulation over [-1000, 1000]: %s (used_engine = %b)@."
        (if !bad = 0 then "ok" else Printf.sprintf "%d failures" !bad)
        (Machine.used_engine mach)
    end
  end;
  0

open Cmdliner

let n = Arg.(required & pos 0 (some int) None & info [] ~docv:"N")

let overflow =
  Arg.(value & flag & info [ "o"; "overflow" ]
         ~doc:"Use monotonic, overflow-detecting chains (section 5, Overflow).")

let exhaustive =
  Arg.(value & flag & info [ "x"; "exhaustive" ]
         ~doc:"Exhaustive minimal-chain search (depth <= 6) instead of the rule program.")

let code = Arg.(value & flag & info [ "c"; "code" ] ~doc:"Print the generated routine.")
let verify =
  Arg.(value & flag & info [ "v"; "verify" ]
         ~doc:"Verify the routine: static lint and linear-form certification \
               (every input at once), then a simulator sweep.")

let no_engine =
  Arg.(value & flag & info [ "no-engine" ]
         ~doc:"Run the verification sweep on the reference interpreter \
               instead of the threaded-code engine.")

let plan =
  Arg.(value & flag & info [ "p"; "plan" ]
         ~doc:"Print the kernel-strategy selection table for multiplying \
               by $(docv): the chosen strategy, every candidate's cost and \
               why rejected ones lost.")

let certified =
  Arg.(value & flag & info [ "certified" ]
         ~doc:"Like $(b,--plan), but only certified strategies may win: \
               the table shows the winner's certificate digest and a \
               'not certified' rejection for candidates whose emission \
               the certifier cannot prove.")

let cmd =
  Cmd.v
    (Cmd.info "hppa-chainc"
       ~doc:"Search shift-and-add chains for multiplication by constants")
    Term.(const show $ n $ overflow $ exhaustive $ code $ verify $ no_engine
          $ plan $ certified)

let () = exit (Cmd.eval' cmd)
