type reg = Reg.t

type alu =
  | Add
  | Addc
  | Sub
  | Subb
  | Shadd of int
  | And
  | Or
  | Xor
  | Andcm

type 'lbl t =
  | Alu of { op : alu; a : reg; b : reg; t : reg; trap_ov : bool }
  | Ds of { a : reg; b : reg; t : reg }
  | Addi of { imm : int32; a : reg; t : reg; trap_ov : bool }
  | Subi of { imm : int32; a : reg; t : reg; trap_ov : bool }
  | Comclr of { cond : Cond.t; a : reg; b : reg; t : reg }
  | Comiclr of { cond : Cond.t; imm : int32; a : reg; t : reg }
  | Extr of {
      signed : bool;
      r : reg;
      pos : int;
      len : int;
      t : reg;
      cond : Cond.t;
    }
  | Zdep of { r : reg; pos : int; len : int; t : reg }
  | Shd of { a : reg; b : reg; sa : int; t : reg }
  | Ldil of { imm : int32; t : reg }
  | Ldo of { imm : int32; base : reg; t : reg }
  | Ldw of { disp : int32; base : reg; t : reg }
  | Stw of { r : reg; disp : int32; base : reg }
  | Ldaddr of { target : 'lbl; t : reg }
  | Comb of { cond : Cond.t; a : reg; b : reg; target : 'lbl; n : bool }
  | Comib of { cond : Cond.t; imm : int32; a : reg; target : 'lbl; n : bool }
  | Addib of { cond : Cond.t; imm : int32; a : reg; target : 'lbl; n : bool }
  | B of { target : 'lbl; n : bool }
  | Bl of { target : 'lbl; t : reg; n : bool }
  | Blr of { x : reg; t : reg; n : bool }
  | Bv of { x : reg; base : reg; n : bool }
  | Break of { code : int }
  | Nop

let map_target f = function
  | Ldaddr { target; t } -> Ldaddr { target = f target; t }
  | Comb { cond; a; b; target; n } -> Comb { cond; a; b; target = f target; n }
  | Comib { cond; imm; a; target; n } -> Comib { cond; imm; a; target = f target; n }
  | Addib { cond; imm; a; target; n } -> Addib { cond; imm; a; target = f target; n }
  | B { target; n } -> B { target = f target; n }
  | Bl { target; t; n } -> Bl { target = f target; t; n }
  | Alu _ as i -> i
  | Ds _ as i -> i
  | Addi _ as i -> i
  | Subi _ as i -> i
  | Comclr _ as i -> i
  | Comiclr _ as i -> i
  | Extr _ as i -> i
  | Zdep _ as i -> i
  | Shd _ as i -> i
  | Ldil _ as i -> i
  | Ldo _ as i -> i
  | Ldw _ as i -> i
  | Stw _ as i -> i
  | Blr _ as i -> i
  | Bv _ as i -> i
  | Break _ as i -> i
  | Nop -> Nop

let target = function
  | Ldaddr { target; _ }
  | Comb { target; _ }
  | Comib { target; _ }
  | Addib { target; _ }
  | B { target; _ }
  | Bl { target; _ } ->
      Some target
  | Alu _ | Ds _ | Addi _ | Subi _ | Comclr _ | Comiclr _ | Extr _ | Zdep _
  | Shd _ | Ldil _ | Ldo _ | Ldw _ | Stw _ | Blr _ | Bv _ | Break _ | Nop ->
      None

let equal eq_lbl i1 i2 =
  match (i1, i2) with
  | Ldaddr a, Ldaddr b -> eq_lbl a.target b.target && Reg.equal a.t b.t
  | Comb a, Comb b ->
      Cond.equal a.cond b.cond && Reg.equal a.a b.a && Reg.equal a.b b.b
      && eq_lbl a.target b.target && a.n = b.n
  | Comib a, Comib b ->
      Cond.equal a.cond b.cond && a.imm = b.imm && Reg.equal a.a b.a
      && eq_lbl a.target b.target && a.n = b.n
  | Addib a, Addib b ->
      Cond.equal a.cond b.cond && a.imm = b.imm && Reg.equal a.a b.a
      && eq_lbl a.target b.target && a.n = b.n
  | B a, B b -> eq_lbl a.target b.target && a.n = b.n
  | Bl a, Bl b -> eq_lbl a.target b.target && Reg.equal a.t b.t && a.n = b.n
  | i1, i2 -> map_target (fun _ -> ()) i1 = map_target (fun _ -> ()) i2

let is_branch = function
  | Comb _ | Comib _ | Addib _ | B _ | Bl _ | Blr _ | Bv _ -> true
  | Alu _ | Ds _ | Addi _ | Subi _ | Comclr _ | Comiclr _ | Extr _ | Zdep _
  | Shd _ | Ldil _ | Ldo _ | Ldw _ | Stw _ | Ldaddr _ | Break _ | Nop ->
      false

let writes = function
  | Alu { t; _ }
  | Ds { t; _ }
  | Addi { t; _ }
  | Subi { t; _ }
  | Comclr { t; _ }
  | Comiclr { t; _ }
  | Extr { t; _ }
  | Zdep { t; _ }
  | Shd { t; _ }
  | Ldil { t; _ }
  | Ldo { t; _ }
  | Ldw { t; _ }
  | Ldaddr { t; _ }
  | Bl { t; _ }
  | Blr { t; _ } ->
      Some t
  | Addib { a; _ } -> Some a
  | Stw _ | Comb _ | Comib _ | B _ | Bv _ | Break _ | Nop -> None

let in_range lo hi v = v >= lo && v <= hi

let check_imm name bits (imm : int32) =
  let bound = Int32.shift_left 1l (bits - 1) in
  if imm >= Int32.neg bound && imm < bound then Ok ()
  else Error (Printf.sprintf "%s: immediate %ld out of %d-bit signed range" name imm bits)

let check_field name pos len =
  if pos >= 0 && len >= 1 && pos + len <= 32 then Ok ()
  else Error (Printf.sprintf "%s: bad field pos=%d len=%d" name pos len)

let validate = function
  | Alu { op = Shadd k; _ } when not (in_range 1 3 k) ->
      Error (Printf.sprintf "shadd: shift amount %d not in 1..3" k)
  | Alu _ | Ds _ | Comclr _ | Nop | B _ | Bl _ | Blr _ | Bv _ | Ldaddr _ ->
      Ok ()
  | Addi { imm; _ } -> check_imm "addi" 14 imm
  | Subi { imm; _ } -> check_imm "subi" 11 imm
  | Comiclr { imm; _ } -> check_imm "comiclr" 11 imm
  | Extr { pos; len; _ } -> check_field "extr" pos len
  | Zdep { pos; len; _ } -> check_field "zdep" pos len
  | Shd { sa; _ } ->
      if in_range 0 31 sa then Ok ()
      else Error (Printf.sprintf "shd: shift amount %d not in 0..31" sa)
  | Ldil { imm; _ } ->
      if Int32.logand imm 0x7ffl = 0l then Ok ()
      else Error (Printf.sprintf "ldil: %lx has nonzero low 11 bits" imm)
  | Ldo { imm; _ } -> check_imm "ldo" 14 imm
  | Ldw { disp; _ } -> check_imm "ldw" 14 disp
  | Stw { disp; _ } -> check_imm "stw" 14 disp
  | Comb _ -> Ok ()
  | Comib { imm; _ } -> check_imm "comib" 5 imm
  | Addib { imm; _ } -> check_imm "addib" 5 imm
  | Break { code } ->
      if in_range 0 31 code then Ok ()
      else Error (Printf.sprintf "break: code %d not in 0..31" code)

let reads = function
  | Alu { a; b; _ } | Ds { a; b; _ } | Comclr { a; b; _ } -> [ a; b ]
  | Addi { a; _ } | Subi { a; _ } | Comiclr { a; _ } -> [ a ]
  | Extr { r; _ } | Zdep { r; _ } -> [ r ]
  | Shd { a; b; _ } -> [ a; b ]
  | Ldil _ | Ldaddr _ | Break _ | Nop -> []
  | Ldo { base; _ } | Ldw { base; _ } -> [ base ]
  | Stw { r; base; _ } -> [ r; base ]
  | Comb { a; b; _ } -> [ a; b ]
  | Comib { a; _ } -> [ a ]
  | Addib { a; _ } -> [ a ]
  | B _ -> []
  | Bl _ -> []
  | Blr { x; _ } -> [ x ]
  | Bv { x; base; _ } -> [ x; base ]

let reads_distinct i =
  List.fold_right
    (fun r acc -> if List.exists (Reg.equal r) acc then acc else r :: acc)
    (reads i) []

let set_n n = function
  | Comb r -> Comb { r with n }
  | Comib r -> Comib { r with n }
  | Addib r -> Addib { r with n }
  | B r -> B { r with n }
  | Bl r -> Bl { r with n }
  | Blr r -> Blr { r with n }
  | Bv r -> Bv { r with n }
  | i -> i

let get_n = function
  | Comb { n; _ } | Comib { n; _ } | Addib { n; _ } | B { n; _ } | Bl { n; _ }
  | Blr { n; _ } | Bv { n; _ } ->
      n
  | _ -> false

let alu_mnemonic = function
  | Add -> "add"
  | Addc -> "addc"
  | Sub -> "sub"
  | Subb -> "subb"
  | Shadd k -> Printf.sprintf "sh%dadd" k
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Andcm -> "andcm"

let mnemonic = function
  | Alu { op; trap_ov; _ } -> alu_mnemonic op ^ if trap_ov then ",o" else ""
  | Ds _ -> "ds"
  | Addi { trap_ov; _ } -> if trap_ov then "addi,o" else "addi"
  | Subi { trap_ov; _ } -> if trap_ov then "subi,o" else "subi"
  | Comclr { cond; _ } -> "comclr," ^ Cond.to_string cond
  | Comiclr { cond; _ } -> "comiclr," ^ Cond.to_string cond
  | Extr { signed; cond; _ } ->
      let base = if signed then "extrs" else "extru" in
      if Cond.equal cond Cond.Never then base
      else base ^ "," ^ Cond.to_string cond
  | Zdep _ -> "zdep"
  | Shd _ -> "shd"
  | Ldil _ -> "ldil"
  | Ldo _ -> "ldo"
  | Ldw _ -> "ldw"
  | Stw _ -> "stw"
  | Ldaddr _ -> "ldaddr"
  | Comb { cond; n; _ } -> "comb," ^ Cond.to_string cond ^ if n then ",n" else ""
  | Comib { cond; n; _ } -> "comib," ^ Cond.to_string cond ^ if n then ",n" else ""
  | Addib { cond; n; _ } -> "addib," ^ Cond.to_string cond ^ if n then ",n" else ""
  | B { n; _ } -> if n then "b,n" else "b"
  | Bl { n; _ } -> if n then "bl,n" else "bl"
  | Blr { n; _ } -> if n then "blr,n" else "blr"
  | Bv { n; _ } -> if n then "bv,n" else "bv"
  | Break _ -> "break"
  | Nop -> "nop"

let pp pp_lbl ppf i =
  let m = mnemonic i in
  let reg = Reg.pp in
  match i with
  | Alu { a; b; t; _ } -> Format.fprintf ppf "%s %a, %a, %a" m reg a reg b reg t
  | Ds { a; b; t } -> Format.fprintf ppf "%s %a, %a, %a" m reg a reg b reg t
  | Addi { imm; a; t; _ } | Subi { imm; a; t; _ } ->
      Format.fprintf ppf "%s %ld, %a, %a" m imm reg a reg t
  | Comclr { a; b; t; _ } -> Format.fprintf ppf "%s %a, %a, %a" m reg a reg b reg t
  | Comiclr { imm; a; t; _ } -> Format.fprintf ppf "%s %ld, %a, %a" m imm reg a reg t
  | Extr { r; pos; len; t; _ } | Zdep { r; pos; len; t } ->
      Format.fprintf ppf "%s %a, %d, %d, %a" m reg r pos len reg t
  | Shd { a; b; sa; t } -> Format.fprintf ppf "%s %a, %a, %d, %a" m reg a reg b sa reg t
  | Ldil { imm; t } -> Format.fprintf ppf "%s 0x%lx, %a" m imm reg t
  | Ldo { imm; base; t } -> Format.fprintf ppf "%s %ld(%a), %a" m imm reg base reg t
  | Ldw { disp; base; t } -> Format.fprintf ppf "%s %ld(%a), %a" m disp reg base reg t
  | Stw { r; disp; base } -> Format.fprintf ppf "%s %a, %ld(%a)" m reg r disp reg base
  | Ldaddr { target; t } -> Format.fprintf ppf "%s %a, %a" m pp_lbl target reg t
  | Comb { a; b; target; _ } ->
      Format.fprintf ppf "%s %a, %a, %a" m reg a reg b pp_lbl target
  | Comib { imm; a; target; _ } ->
      Format.fprintf ppf "%s %ld, %a, %a" m imm reg a pp_lbl target
  | Addib { imm; a; target; _ } ->
      Format.fprintf ppf "%s %ld, %a, %a" m imm reg a pp_lbl target
  | B { target; _ } -> Format.fprintf ppf "%s %a" m pp_lbl target
  | Bl { target; t; _ } -> Format.fprintf ppf "%s %a, %a" m pp_lbl target reg t
  | Blr { x; t; _ } -> Format.fprintf ppf "%s %a, %a" m reg x reg t
  | Bv { x; base; _ } -> Format.fprintf ppf "%s %a(%a)" m reg x reg base
  | Break { code } -> Format.fprintf ppf "%s %d" m code
  | Nop -> Format.pp_print_string ppf m
