lib/core/div_const.mli: Chain Div_magic Program
