lib/compiler/loop_ir.ml: Expr Format Hashtbl Hppa_word Int64 List
