lib/core/mul_var.mli: Hppa_word Program
