(** Exhaustive search for minimal chains.

    The paper verifies its rule program against "a program that exhaustively
    searches for all possible chains" and derives Figure 1 (the least [n]
    with [l(n) = r]) from it, noting that exhaustive search at depth 7 was
    already prohibitive in 1987. This module is that program.

    Exhaustive search must track whole chains (a step may reuse {e any}
    earlier element, which is exactly what the rule program misses in its
    exceptional cases), so the search state is the set of values built so
    far. Two entry points:

    - {!lengths_table}: breadth-first closure over value sets up to a depth
      bound, producing the exact [l(n)] for every reachable [n <= limit].
      Memory grows steeply with depth; depth 4 is comfortable, depth 5 is
      not (the 1987 authors hit the same wall two levels higher).
    - {!find}: iterative-deepening search for one target, used to certify
      individual table entries and to return an actual minimal chain.

    Intermediate values may be negative and are bounded by [cap] (default
    [4 * limit + 16], which always covers the [(2^k - 1) * n] detour);
    shift amounts are bounded so results stay under the cap. The cap is the
    one heuristic separating this from a full proof — DESIGN.md discusses
    why it is adequate. *)

type lengths_table

val lengths_table :
  ?cap:int ->
  ?domains:int ->
  ?obs:Hppa_obs.Obs.Registry.t ->
  max_len:int ->
  limit:int ->
  unit ->
  lengths_table
(** [domains] (default 1) shards each breadth-first frontier across that
    many OCaml domains via {!Hppa_machine.Sweep}; [domains <= 0] raises
    [Invalid_argument], and a [domains] larger than a frontier simply
    leaves the excess workers idle. The result is bit-identical for
    every domain count: workers keep private best-length and
    next-frontier accumulators and the merge is an elementwise minimum
    plus a set union, both order-independent.

    [obs] publishes search progress: [hppa_chain_sets_expanded_total],
    [hppa_chain_candidates_total], [hppa_chain_depths_total] (counters)
    and [hppa_chain_frontier_size] (gauge). Workers count into
    shard-local ints settled at each depth's merge, so the totals are
    exact — and identical — for every domain count. *)

val length_of : lengths_table -> int -> int option
(** Exact minimal chain length for [n] in [1 .. limit], or [None] if [n] is
    not reachable within [max_len] steps (hence [l(n) > max_len]). *)

val max_len : lengths_table -> int
val limit : lengths_table -> int

val find : ?cap:int -> max_len:int -> int -> Chain.t option
(** Minimal chain for one target within the depth bound; [None] certifies
    [l(n) > max_len] (modulo the cap heuristic). *)
