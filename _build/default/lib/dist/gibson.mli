(** The Gibson instruction mix and program-level cost modelling (§2).

    The paper frames the whole design around instruction frequency: the
    Gibson mix puts multiplication at 0.6 % and division at 0.2 % of
    executed instructions, other studies range 0.0–2.5 % and 0.0–0.5 %.
    This module carries those mixes and computes the program-level slowdown
    or speedup implied by a given per-operation cycle cost — the arithmetic
    behind "a poor implementation could significantly decrease a machine's
    performance". *)

type mix = {
  name : string;
  multiply_freq : float;  (** fraction of dynamic instructions *)
  divide_freq : float;
}

val gibson : mix
(** 0.6 % multiply, 0.2 % divide [Gib70]. *)

val multiply_heavy : mix
(** The top of the published ranges: 2.5 % multiply, 0.5 % divide. *)

val all : mix list

val cpi :
  mix -> mul_cycles:float -> div_cycles:float -> float
(** Average cycles per "instruction slot" when every non-mul/div
    instruction is one cycle and mul/div cost the given averages: the
    program-level metric the paper's frequency argument is about. *)

val relative_speed :
  mix ->
  baseline:float * float ->
  candidate:float * float ->
  float
(** [relative_speed mix ~baseline:(mul, div) ~candidate:(mul', div')]:
    how much faster whole programs run under the candidate mul/div costs
    ([> 1.0] = faster). *)
