lib/isa/builder.mli: Insn Program
