let structure cfg ~entries =
  let out = ref [] in
  let emit f = out := f :: !out in
  let addrs =
    List.filter_map
      (fun name ->
        match Program.symbol (Cfg.program cfg) name with
        | Some a -> Some a
        | None ->
            emit
              (Findings.v ~routine:name Findings.Structure
                 "entry label is not defined");
            None)
      entries
  in
  List.iter
    (fun node ->
      match Cfg.addr_of node with
      | None -> ()
      | Some a ->
          List.iter
            (function
              | Cfg.Indirect ->
                  emit
                    (Findings.v ~addr:a Findings.Structure
                       (Format.asprintf
                          "unresolvable indirect branch %s"
                          (Insn.mnemonic (Cfg.insn cfg a))))
              | Cfg.Off_image ->
                  emit
                    (Findings.v ~addr:a Findings.Structure
                       "control can run off the program image")
              | _ -> ())
            (Cfg.succs cfg node))
    (Cfg.reachable cfg ~entries:addrs);
  (addrs, List.rev !out)

let check ?(options = Cfg.default) ?specs ?(pairs = []) ~entries prog =
  let cfg = Cfg.make ?specs options prog in
  let addrs, structural = structure cfg ~entries in
  structural
  @ Hazards.check cfg
  @ List.concat_map
      (fun entry -> Defuse.check cfg ~entry @ Convention.check cfg ~entry)
      addrs
  @ List.concat_map (fun spec -> Pairs.check cfg ~spec) pairs

let check_source ?options ?specs ?pairs ~entries src =
  Result.map (check ?options ?specs ?pairs ~entries) (Program.resolve src)

let missing_entry entry =
  Findings.v ~routine:entry Findings.Structure "entry label is not defined"

let certify ?(options = Cfg.default) prog ~entry ~multiplier =
  match Program.symbol prog entry with
  | None -> Linear.Unknown (Format.asprintf "no label %S" entry)
  | Some addr ->
      Linear.certify (Cfg.make options prog) ~entry:addr ~multiplier

let certify_findings ?options prog ~entry ~multiplier =
  match Program.symbol prog entry with
  | None -> (Linear.Unknown "entry label is not defined", [ missing_entry entry ])
  | Some _ ->
      let v = certify ?options prog ~entry ~multiplier in
      (v, Linear.findings ~routine:entry v)

(* ------------------------------------------------------------------ *)
(* Division certification *)

(* [ldi c, arg1] (one or two instructions) followed by [b target]: the
   constant-divisor fallback wrapper shape. *)
let peek_wrapper cfg addr =
  let branch a =
    match Cfg.insn cfg a with
    | Insn.B { target; n = false } -> Some target
    | _ | (exception _) -> None
  in
  match Cfg.insn cfg addr with
  | Insn.Ldo { imm; base; t }
    when Reg.equal base Reg.r0 && Reg.equal t Reg.arg1 ->
      Option.map (fun tgt -> (imm, tgt)) (branch (addr + 1))
  | Insn.Ldil { imm; t } when Reg.equal t Reg.arg1 -> (
      match Cfg.insn cfg (addr + 1) with
      | Insn.Ldo { imm = lo; base; t }
        when Reg.equal base Reg.arg1 && Reg.equal t Reg.arg1 ->
          Option.map (fun tgt -> (Int32.add imm lo, tgt)) (branch (addr + 2))
      | _ | (exception _) -> None)
  | _ | (exception _) -> None

let is_divstep_head cfg addr =
  match Cfg.insn cfg addr with
  | Insn.Comib { cond = Cond.Eq; imm = 0l; a; _ } -> Reg.equal a Reg.arg1
  | _ | (exception _) -> false

let certify_division_at cfg ~addr ~name ~(claim : Reciprocal.claim) =
  let signed = claim.Reciprocal.signed in
  let want_rem = claim.Reciprocal.op = `Rem in
  if is_divstep_head cfg addr then
    (* the general millicode: correct for every divisor, so in
       particular the claimed one (zero traps before any step) *)
    Divstep.certify cfg ~entry:addr ~name ~signed ~want_rem
  else
    match peek_wrapper cfg addr with
    | Some (c, target) ->
        if Int32.equal c 0l then
          Reciprocal.Unknown "fallback wrapper loads divisor zero"
        else if not (Int32.equal c claim.Reciprocal.divisor) then
          Reciprocal.Unknown
            (Printf.sprintf "fallback wrapper loads %ld, claim divides by %ld"
               c claim.Reciprocal.divisor)
        else if not (is_divstep_head cfg target) then
          Reciprocal.Unknown "fallback wrapper target is not the divide-step"
        else Divstep.certify cfg ~entry:target ~name ~signed ~want_rem
    | None -> Reciprocal.certify cfg ~entry:addr ~claim

let certify_division ?(options = Cfg.default) prog ~entry ~claim =
  match Program.symbol prog entry with
  | None -> Reciprocal.Unknown (Format.asprintf "no label %S" entry)
  | Some addr ->
      certify_division_at (Cfg.make options prog) ~addr ~name:entry ~claim

let certify_body ~canonical prog ~entry = Equiv.certify ~canonical ~entry prog

let certify_divstep ?(options = Cfg.default) prog ~entry ~signed ~want_rem =
  match Program.symbol prog entry with
  | None -> Reciprocal.Unknown (Format.asprintf "no label %S" entry)
  | Some addr ->
      Divstep.certify (Cfg.make options prog) ~entry:addr ~name:entry ~signed
        ~want_rem

(* The §7 vectored small-divisor dispatcher: a bounds test sending every
   divisor >= threshold (and, unsigned-compared, every negative one) to
   the general divide, then a BLR table whose slot j handles divisor j.
   Totality over the declared set [1, threshold) follows from the
   unsigned bound; each arm is certified with its slot's divisor as the
   claim, the zero slot must trap, and the general target must match the
   divide-step schema. *)
let certify_dispatch ?(options = Cfg.default) prog ~entry ~signed =
  match Program.symbol prog entry with
  | None -> Reciprocal.Unknown (Format.asprintf "no label %S" entry)
  | Some addr -> (
      let cfg = Cfg.make options prog in
      let get a =
        match Cfg.insn cfg a with
        | i -> Some i
        | exception _ -> None
      in
      match (get addr, get (addr + 1), get (addr + 2)) with
      | ( Some (Insn.Ldo { imm = thr; base; t = bound }),
          Some (Insn.Comb { cond = Cond.Uge; a; b; target = general; n = false }),
          Some (Insn.Blr { x; t; n = false }) )
        when Reg.equal base Reg.r0
             && Reg.equal a Reg.arg1 && Reg.equal b bound
             && Reg.equal x Reg.arg1 && Reg.equal t Reg.r0
             && (not (Reg.equal bound Reg.arg0))
             && not (Reg.equal bound Reg.arg1) -> (
          let thr = Int32.to_int thr in
          if thr < 2 || thr > options.Cfg.blr_slots then
            Reciprocal.Unknown
              (Printf.sprintf
                 "dispatch threshold %d outside the analyzed slot count %d" thr
                 options.Cfg.blr_slots)
          else if not (is_divstep_head cfg general) then
            Reciprocal.Unknown "dispatch general path is not the divide-step"
          else
            match
              Divstep.certify cfg ~entry:general ~name:(entry ^ "$general")
                ~signed ~want_rem:false
            with
            | Reciprocal.Refuted m -> Reciprocal.Refuted m
            | Reciprocal.Unknown m ->
                Reciprocal.Unknown ("dispatch general path: " ^ m)
            | Reciprocal.Certified general_cert -> (
                let slot_base = addr + 3 in
                let rec arms j acc =
                  if j >= thr then Ok (List.rev acc)
                  else
                    let slot = slot_base + (2 * j) in
                    if j = 0 then
                      match get slot with
                      | Some (Insn.Break _) -> arms 1 acc
                      | _ -> Error "divisor-zero slot does not trap"
                    else
                      match get slot with
                      | Some (Insn.B { target; n = false }) -> (
                          let claim =
                            {
                              Reciprocal.op = `Div;
                              signed;
                              divisor = Int32.of_int j;
                            }
                          in
                          match
                            certify_division_at cfg ~addr:target
                              ~name:(Printf.sprintf "%s$slot%d" entry j)
                              ~claim
                          with
                          | Reciprocal.Certified c -> arms (j + 1) ((j, c) :: acc)
                          | Reciprocal.Refuted m ->
                              Error
                                (Printf.sprintf "arm for divisor %d refuted: %s"
                                   j m)
                          | Reciprocal.Unknown m ->
                              Error
                                (Printf.sprintf "arm for divisor %d: %s" j m))
                      | _ -> Error (Printf.sprintf "slot %d is not a branch" j)
                in
                match arms 0 [] with
                | Error m -> Reciprocal.Unknown m
                | Ok arm_certs ->
                    let transcript =
                      Printf.sprintf
                        "total dispatch: BLR on arg1 covers divisors 0..%d, \
                         COMB,>>= sends %d.. (and all negatives, compared \
                         unsigned) to the general divide; slot 0 traps"
                        (thr - 1) thr
                      :: Printf.sprintf "general path: divide-step %s"
                           general_cert.Certificate.digest
                      :: List.map
                           (fun (j, (c : Certificate.t)) ->
                             Printf.sprintf "divisor %d: %s %s" j
                               (Certificate.kind_label c.Certificate.kind)
                               c.Certificate.digest)
                           arm_certs
                    in
                    Reciprocal.Certified
                      (Certificate.v
                         (Certificate.Dispatch
                            { entry; divisors = (1, thr - 1) })
                         transcript)))
      | _ -> Reciprocal.Unknown "entry does not match the dispatch schema")
