test/test_main.ml: Alcotest Test_baselines Test_chains Test_compiler Test_delay Test_dist Test_div Test_ext Test_isa Test_machine Test_mul Test_word
