(** Built-in load generator for the plan service.

    Drives a running server over [conns] concurrent connections with
    [requests] total requests drawn from one of the operand models in
    {!Hppa_dist} (all seeded — a given [(dist, seed, requests, conns)]
    tuple always produces the same request multiset):

    - [Figure5]: [EVAL mulI x y] with operand pairs from
      {!Hppa_dist.Operand_dist.figure5_pair} — the paper's multiply
      workload, exercising the simulator path;
    - [Zipf]: [MUL c] / [DIV c] with constants Zipf-skewed over a small
      support, the cache-friendly "compiler recompiles the same
      constants" workload (CI asserts > 90% hit rate on it);
    - [Smalldiv]: [DIV d] with d uniform in 1..19 (§7's "divisors less
      than twenty");
    - [Mixed]: a blend of the three;
    - [W64mix]: half [Zipf] traffic, half 64-bit [W64MUL]/[W64DIV]/
      [W64REM] requests whose verb, signedness and operands all derive
      deterministically from a zipf rank — so W64 keys repeat with the
      zipf head weights and the cache hit-rate gate extends to the
      64-bit family.

    After the request threads join, one extra connection queries [STATS]
    and the parsed counters are folded into the summary. *)

type dist = Figure5 | Zipf | Smalldiv | Mixed | W64mix

val dist_of_string : string -> (dist, string) result
val dist_to_string : dist -> string

type summary = {
  dist : dist;
  requests : int;  (** requests actually sent *)
  conns : int;
  seed : int64;
  ok : int;
  errors : int;  (** ERR replies plus connection-level failures *)
  wall_s : float;
  throughput_rps : float;  (** achieved rate, [requests / wall_s] *)
  offered_rps : float option;
      (** open-loop offered rate, [None] for closed-loop runs *)
  p50_us : float;
  p99_us : float;
      (** client-observed latency: round-trip time in closed-loop mode,
          time from the {e scheduled} arrival to the reply in open-loop
          mode (coordinated-omission-free) *)
  batch_width : int;  (** [1] = all-scalar traffic *)
  batch_mismatches : int;
      (** batch lanes that were not byte-identical to the scalar reply
          for the same operand in the per-connection cross-check; always
          [0] for scalar traffic, and must be [0] for a healthy server *)
  server_stats : (string * string) list;
      (** [k=v] pairs from the final [STATS] reply, e.g.
          [("cache_hit_rate", "0.9731")] *)
}

val run :
  ?batch_width:int ->
  ?rate:float ->
  endpoint:Server.Config.endpoint ->
  requests:int ->
  conns:int ->
  dist:dist ->
  seed:int64 ->
  unit ->
  (summary, string) result
(** [Error] only for setup failures (cannot connect), a [batch_width]
    outside [1..]{!Protocol.max_batch_operands}, a non-positive [rate],
    or combining [rate] with a batch width; per-request failures are
    counted in [errors].

    Without [rate] the generator is {e closed-loop}: each connection
    sends a request, waits for the reply, sends the next — latency is
    the round-trip time, and a slow server silently lowers the offered
    rate (coordinated omission). With [rate] (total requests/second,
    split evenly across connections) it is {e open-loop}: arrivals
    follow a seeded exponential (Poisson) schedule fixed before the
    clock starts, a writer thread per connection sends on schedule
    (pipelining into the server when replies lag) and latency is
    measured from the scheduled arrival — server queueing shows up in
    p99 instead of vanishing into the send times. The summary records
    the offered rate next to the achieved one.

    [batch_width] above one (closed-loop only) coalesces each window of
    the request stream into at most one [MULB] and one [DIVB] line
    (anything else — [EVAL] lines — still goes scalar); every lane of a
    batch reply counts as one logical request in the summary. The first
    batch on each connection is cross-checked lane-by-lane against
    scalar requests for the same operands; any reply that is not
    byte-identical bumps [batch_mismatches]. *)

val hit_rate : summary -> float option
(** The server-reported [cache_hit_rate], if present. *)

val write_json : path:string -> summary -> unit
(** Write BENCH_SERVE.json (schema [hppa-bench-serve/2]: adds
    [offered_rps], [null] for closed-loop runs). *)

val pp_summary : Format.formatter -> summary -> unit
