type mix = { name : string; multiply_freq : float; divide_freq : float }

let gibson = { name = "Gibson"; multiply_freq = 0.006; divide_freq = 0.002 }

let multiply_heavy =
  { name = "multiply-heavy"; multiply_freq = 0.025; divide_freq = 0.005 }

let all = [ gibson; multiply_heavy ]

let cpi mix ~mul_cycles ~div_cycles =
  let other = 1.0 -. mix.multiply_freq -. mix.divide_freq in
  other +. (mix.multiply_freq *. mul_cycles) +. (mix.divide_freq *. div_cycles)

let relative_speed mix ~baseline:(mul0, div0) ~candidate:(mul1, div1) =
  cpi mix ~mul_cycles:mul0 ~div_cycles:div0
  /. cpi mix ~mul_cycles:mul1 ~div_cycles:div1
