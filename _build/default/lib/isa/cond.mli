(** Compare conditions for branches, compare-and-clear and add-and-branch.

    A subset of the PA-RISC condition/negation encodings, covering every
    condition the paper's routines use (notably [Odd] for the "test for odd"
    multiplier-bit probe and the unsigned orderings for magnitude tests). *)

type t =
  | Never
  | Always
  | Eq
  | Neq
  | Lt (** signed < *)
  | Le (** signed <= *)
  | Gt (** signed > *)
  | Ge (** signed >= *)
  | Ult (** unsigned < *)
  | Ule (** unsigned <= *)
  | Ugt (** unsigned > *)
  | Uge (** unsigned >= *)
  | Odd (** low bit of [a - b] (in practice used with b = 0) *)
  | Even

val eval : t -> Hppa_word.Word.t -> Hppa_word.Word.t -> bool
(** [eval c a b] — e.g. [eval Lt a b] is the signed test [a < b]. [Odd] and
    [Even] test the parity of [a - b]. *)

val negate : t -> t
val to_string : t -> string
(** Assembler spelling without the leading comma, e.g. ["<"], ["<<="],
    ["od"]. *)

val of_string : string -> t option
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val all : t list
