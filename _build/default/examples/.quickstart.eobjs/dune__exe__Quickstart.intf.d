examples/quickstart.mli:
