(* Calendar arithmetic: a division-heavy workload (section 7).

   Breaking a Unix-style timestamp into days / hours / minutes / seconds
   and a day-of-week is nothing but divisions by the small constants 60,
   60, 24 and 7 — exactly the workload the derived method targets. This
   example decomposes timestamps three ways and counts simulated cycles:

     1. the general-purpose DS millicode divide (~76 cycles each),
     2. the small-divisor runtime dispatch (divisor known only at run time),
     3. constant-divisor routines from the derived method.

   Run with:  dune exec examples/calendar_division.exe *)

module Word = Hppa_word.Word
module Machine = Hppa_machine.Machine

(* divmod through any divide entry that leaves the quotient in ret0; the
   remainder is recovered as x - q*y on the host to keep the comparison
   about division cost only. *)
let div_via mach entry x y =
  match Machine.call_cycles mach entry ~args:[ x; y ] with
  | Machine.Halted, cycles ->
      let q = Machine.get mach Reg.ret0 in
      (q, Word.sub x (Word.mul_lo q y), cycles)
  | (Machine.Trapped _ | Machine.Fuel_exhausted), _ -> (0l, 0l, -1)

let div_const mach entry x y =
  match Machine.call_cycles mach entry ~args:[ x ] with
  | Machine.Halted, cycles ->
      let q = Machine.get mach Reg.ret0 in
      (q, Word.sub x (Word.mul_lo q y), cycles)
  | (Machine.Trapped _ | Machine.Fuel_exhausted), _ -> (0l, 0l, -1)

let () =
  (* One image holding the millicode plus the constant-divisor routines
     this workload needs. *)
  (* Divisors below 20 (here: 7) already have routines inside the
     millicode's small-divisor table; only the larger ones need plans. *)
  let plans = List.map (fun y -> Hppa.Div_const.plan_unsigned (Int32.of_int y)) [ 60; 24 ] in
  let prog =
    Program.resolve_exn
      (Program.concat (Hppa.Millicode.source :: List.map (fun (p : Hppa.Div_const.plan) -> p.source) plans))
  in
  let mach = Machine.create prog in

  let decompose name div =
    let total = ref 0 in
    let stamp = 1_234_567_890l in
    let minutes, sec, c1 = div stamp 60l in
    total := !total + c1;
    let hours, min_, c2 = div minutes 60l in
    total := !total + c2;
    let days, hour, c3 = div hours 24l in
    total := !total + c3;
    let _weeks, dow, c4 = div days 7l in
    total := !total + c4;
    Format.printf
      "%-24s %ld days, %02ld:%02ld:%02ld, day-of-week %ld   (%d cycles for 4 divides)@."
      name days hour min_ sec dow !total
  in

  Format.printf "timestamp 1234567890 decomposed three ways:@.@.";
  decompose "general divU:" (fun x y -> div_via mach "divU" x y);
  decompose "runtime dispatch:" (fun x y -> div_via mach "divU_small" x y);
  decompose "derived method:" (fun x y ->
      div_const mach (Printf.sprintf "divu_c%ld" y) x y);

  (* Aggregate over a year of hourly timestamps. *)
  Format.printf "@.8760 hourly timestamps (one year), total divide cycles:@.";
  List.iter
    (fun (name, div) ->
      let total = ref 0 in
      for h = 0 to 8759 do
        let stamp = Int32.add 1_200_000_000l (Int32.mul 3600l (Int32.of_int h)) in
        let _, _, c1 = div stamp 60l in
        let _, _, c2 = div stamp 24l in
        total := !total + c1 + c2
      done;
      Format.printf "  %-20s %d@." name !total)
    [
      ("general divU", fun x y -> div_via mach "divU" x y);
      ("runtime dispatch", fun x y -> div_via mach "divU_small" x y);
      ( "derived method",
        fun x y -> div_const mach (Printf.sprintf "divu_c%ld" y) x y );
    ]
