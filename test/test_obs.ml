(* Tests for the observability layer (lib/obs): exact counting under
   domains and threads, byte-stable exporters (golden files), the
   exposition parser round trip, trace-ring overflow, the machine's
   registry integration (engine/interpreter parity of hppa_sim_*
   families). *)

module Obs = Hppa_obs.Obs
module Machine = Hppa_machine.Machine

(* ------------------------------------------------------------------ *)
(* Counters, gauges, histograms                                        *)

let test_counter_basics () =
  let c = Obs.Counter.create () in
  Alcotest.(check int) "zero" 0 (Obs.Counter.get c);
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Alcotest.(check int) "42" 42 (Obs.Counter.get c);
  Obs.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Obs.Counter.get c)

let test_histogram_percentiles () =
  let h = Obs.Histogram.create () in
  Alcotest.(check (float 0.0)) "empty" 0.0 (Obs.Histogram.percentile h 99.0);
  for _ = 1 to 99 do
    Obs.Histogram.observe h 3.0
  done;
  Obs.Histogram.observe h 5000.0;
  Alcotest.(check int) "count" 100 (Obs.Histogram.count h);
  (* 3.0 lands in (2,4]: upper bound 4. *)
  Alcotest.(check (float 0.0)) "p50" 4.0 (Obs.Histogram.percentile h 50.0);
  Alcotest.(check (float 0.0)) "p99" 4.0 (Obs.Histogram.percentile h 99.0);
  Alcotest.(check (float 0.0)) "p100" 8192.0
    (Obs.Histogram.percentile h 100.0);
  (* Sub-microsecond observations take bucket 0 (upper bound 1). *)
  let h0 = Obs.Histogram.create () in
  Obs.Histogram.observe h0 0.25;
  Alcotest.(check (float 0.0)) "bucket 0" 1.0
    (Obs.Histogram.percentile h0 50.0)

(* Observations at or above 2^38 land in the explicit overflow bucket;
   percentiles whose rank falls there report +Inf, never a fake finite
   upper bound. *)
let test_histogram_overflow () =
  Alcotest.(check bool)
    "overflow upper bound is +Inf" true
    (Obs.Histogram.bucket_upper (Obs.Histogram.buckets - 1) = infinity);
  let h = Obs.Histogram.create () in
  for _ = 1 to 9 do
    Obs.Histogram.observe h 3.0
  done;
  Obs.Histogram.observe h 1e12 (* ~11.6 days in us: beyond 2^38 *);
  Alcotest.(check int) "count" 10 (Obs.Histogram.count h);
  Alcotest.(check (float 0.0)) "p50 stays finite" 4.0
    (Obs.Histogram.percentile h 50.0);
  Alcotest.(check bool) "p100 is +Inf" true
    (Obs.Histogram.percentile h 100.0 = infinity);
  (* The largest representable finite bucket still resolves finitely. *)
  let h2 = Obs.Histogram.create () in
  Obs.Histogram.observe h2 (Float.of_int (1 lsl 37));
  Alcotest.(check (float 0.0))
    "last finite bucket" (Float.of_int (1 lsl 38))
    (Obs.Histogram.percentile h2 100.0)

let count_substring needle hay =
  let nl = String.length needle and hl = String.length hay in
  let n = ref 0 in
  for i = 0 to hl - nl do
    if String.sub hay i nl = needle then incr n
  done;
  !n

(* An overflowed histogram must export exactly one +Inf bucket line
   (carrying the total), parse back, and stay valid JSON. *)
let test_histogram_overflow_export () =
  let reg = Obs.Registry.create () in
  let h = Obs.Registry.histogram reg "lat_us" in
  for _ = 1 to 9 do
    Obs.Histogram.observe h 3.0
  done;
  Obs.Histogram.observe h 1e12;
  let text = Obs.Export.prometheus (Obs.Registry.snapshot reg) in
  Alcotest.(check int)
    "exactly one +Inf bucket line" 1
    (count_substring "lat_us_bucket{le=\"+Inf\"}" text);
  Alcotest.(check int)
    "+Inf line carries the total" 1
    (count_substring "lat_us_bucket{le=\"+Inf\"} 10" text);
  Alcotest.(check int)
    "no lowercase inf leaks" 0
    (count_substring "le=\"inf\"" text);
  (match Obs.Export.parse_prometheus (text ^ "# EOF") with
  | Error msg -> Alcotest.failf "round trip failed: %s" msg
  | Ok samples ->
      Alcotest.(check (option (float 0.0)))
        "count round trips" (Some 10.0)
        (Obs.Export.find samples "lat_us_count"));
  let json = Obs.Export.json (Obs.Registry.snapshot reg) in
  Alcotest.(check int)
    "overflow bucket quoted in JSON" 1
    (count_substring "[\"+Inf\",10]" json);
  Alcotest.(check int) "no bare inf in JSON" 0 (count_substring "[inf" json)

(* ------------------------------------------------------------------ *)
(* Registry semantics                                                  *)

let test_registry_interning () =
  let reg = Obs.Registry.create () in
  let a = Obs.Registry.counter reg "x_total" in
  let b = Obs.Registry.counter reg "x_total" in
  Obs.Counter.incr a;
  Obs.Counter.incr b;
  (* Same (name, labels) -> same cell. *)
  Alcotest.(check int) "interned" 2 (Obs.Counter.get a);
  let l1 = Obs.Registry.counter reg ~labels:[ ("k", "v") ] "x_total" in
  Obs.Counter.incr l1;
  Alcotest.(check int) "labels distinguish" 1 (Obs.Counter.get l1);
  Alcotest.(check int) "unlabeled untouched" 2 (Obs.Counter.get a)

let test_registry_kind_mismatch () =
  let reg = Obs.Registry.create () in
  ignore (Obs.Registry.counter reg "x_total");
  (match Obs.Registry.gauge reg "x_total" with
  | _ -> Alcotest.fail "gauge over counter accepted"
  | exception Invalid_argument _ -> ());
  match Obs.Registry.histogram reg "x_total" with
  | _ -> Alcotest.fail "histogram over counter accepted"
  | exception Invalid_argument _ -> ()

let test_registry_concurrent_exact () =
  (* 4 domains x 4 threads x 5000 increments on one interned counter,
     plus racing get-or-create: totals must be exact. *)
  let reg = Obs.Registry.create () in
  let per_thread = 5_000 and threads = 4 and domains = 4 in
  let hist = Obs.Registry.histogram reg "lat_us" in
  let domain_body () =
    let ths =
      List.init threads (fun _ ->
          Thread.create
            (fun () ->
              let c = Obs.Registry.counter reg "hits_total" in
              for i = 1 to per_thread do
                Obs.Counter.incr c;
                Obs.Histogram.observe hist (float_of_int (i land 1023))
              done)
            ())
    in
    List.iter Thread.join ths
  in
  let ds = List.init domains (fun _ -> Domain.spawn domain_body) in
  List.iter Domain.join ds;
  let expected = domains * threads * per_thread in
  Alcotest.(check int) "counter exact" expected
    (Obs.Counter.get (Obs.Registry.counter reg "hits_total"));
  Alcotest.(check int) "histogram exact" expected (Obs.Histogram.count hist)

(* ------------------------------------------------------------------ *)
(* Exporter goldens                                                    *)

let golden_registry () =
  let reg = Obs.Registry.create () in
  let c = Obs.Registry.counter reg ~help:"Requests" "app_requests_total" in
  Obs.Counter.add c 3;
  let g = Obs.Registry.gauge reg ~help:"Temp" "app_temperature" in
  Obs.Gauge.set g 21.5;
  let h = Obs.Registry.histogram reg ~help:"Latency" "app_latency_us" in
  List.iter (Obs.Histogram.observe h) [ 0.5; 3.0; 3.5; 100.0 ];
  (* Labels render sorted by label name, whatever order they were
     declared in. *)
  let lc =
    Obs.Registry.counter reg ~help:"Labeled"
      ~labels:[ ("zone", "b"); ("app", "x") ]
      "app_labeled_total"
  in
  Obs.Counter.incr lc;
  reg

let prometheus_golden =
  "# HELP app_labeled_total Labeled\n\
   # TYPE app_labeled_total counter\n\
   app_labeled_total{app=\"x\",zone=\"b\"} 1\n\
   # HELP app_latency_us Latency\n\
   # TYPE app_latency_us histogram\n\
   app_latency_us_bucket{le=\"1\"} 1\n\
   app_latency_us_bucket{le=\"4\"} 3\n\
   app_latency_us_bucket{le=\"128\"} 4\n\
   app_latency_us_bucket{le=\"+Inf\"} 4\n\
   app_latency_us_sum 107\n\
   app_latency_us_count 4\n\
   # HELP app_requests_total Requests\n\
   # TYPE app_requests_total counter\n\
   app_requests_total 3\n\
   # HELP app_temperature Temp\n\
   # TYPE app_temperature gauge\n\
   app_temperature 21.5\n"

let json_golden =
  "{\"schema\":\"hppa-obs/1\",\"metrics\":[{\"name\":\"app_labeled_total\",\"type\":\"counter\",\"labels\":{\"app\":\"x\",\"zone\":\"b\"},\"value\":1},{\"name\":\"app_latency_us\",\"type\":\"histogram\",\"labels\":{},\"count\":4,\"sum\":107.0,\"buckets\":[[1.0,1],[4.0,3],[128.0,4]]},{\"name\":\"app_requests_total\",\"type\":\"counter\",\"labels\":{},\"value\":3},{\"name\":\"app_temperature\",\"type\":\"gauge\",\"labels\":{},\"value\":21.5}]}"

let test_prometheus_golden () =
  let out = Obs.Export.prometheus (Obs.Registry.snapshot (golden_registry ())) in
  Alcotest.(check string) "prometheus text" prometheus_golden out

let test_json_golden () =
  let out = Obs.Export.json (Obs.Registry.snapshot (golden_registry ())) in
  Alcotest.(check string) "json" json_golden out

let test_snapshot_order_stable () =
  (* Registration order must not leak into the export. *)
  let reg = Obs.Registry.create () in
  Obs.Counter.add (Obs.Registry.counter reg "z_total") 1;
  Obs.Counter.add (Obs.Registry.counter reg "a_total") 2;
  Obs.Counter.add (Obs.Registry.counter reg ~labels:[ ("l", "2") ] "m_total") 3;
  Obs.Counter.add (Obs.Registry.counter reg ~labels:[ ("l", "1") ] "m_total") 4;
  let names =
    List.map
      (fun s -> ((s : Obs.sample).name, s.labels))
      (Obs.Registry.snapshot reg)
  in
  Alcotest.(check (list (pair string (list (pair string string)))))
    "sorted by name then labels"
    [
      ("a_total", []);
      ("m_total", [ ("l", "1") ]);
      ("m_total", [ ("l", "2") ]);
      ("z_total", []);
    ]
    names

let test_parse_round_trip () =
  let text =
    Obs.Export.prometheus (Obs.Registry.snapshot (golden_registry ()))
    ^ "# EOF"
  in
  match Obs.Export.parse_prometheus text with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok samples ->
      Alcotest.(check (option (float 0.0)))
        "counter value" (Some 3.0)
        (Obs.Export.find samples "app_requests_total");
      Alcotest.(check (option (float 0.0)))
        "gauge value" (Some 21.5)
        (Obs.Export.find samples "app_temperature");
      Alcotest.(check (option (float 0.0)))
        "histogram count" (Some 4.0)
        (Obs.Export.find samples "app_latency_us_count");
      let labeled =
        List.find_opt
          (fun (n, _, _) -> n = "app_labeled_total")
          samples
      in
      match labeled with
      | Some (_, labels, v) ->
          Alcotest.(check (list (pair string string)))
            "labels" [ ("app", "x"); ("zone", "b") ] labels;
          Alcotest.(check (float 0.0)) "labeled value" 1.0 v
      | None -> Alcotest.fail "labeled sample missing"

let test_parse_rejects_garbage () =
  match Obs.Export.parse_prometheus "!!not a metric!!\n" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Trace ring                                                          *)

let test_trace_overflow () =
  let tr = Obs.Trace.create ~capacity:4 in
  for i = 0 to 9 do
    Obs.Trace.emit tr "tick" [ ("i", Obs.Trace.Int i) ]
  done;
  Alcotest.(check int) "emitted" 10 (Obs.Trace.emitted tr);
  Alcotest.(check int) "dropped" 6 (Obs.Trace.dropped tr);
  let evs = Obs.Trace.events tr in
  Alcotest.(check int) "retained" 4 (List.length evs);
  Alcotest.(check (list int))
    "oldest first, newest retained" [ 6; 7; 8; 9 ]
    (List.map (fun (e : Obs.Trace.event) -> e.seq) evs)

let test_trace_jsonl () =
  let tr = Obs.Trace.create ~capacity:8 in
  Obs.Trace.emit tr "run"
    [
      ("pc", Obs.Trace.Int 4096);
      ("us", Obs.Trace.Float 1.5);
      ("entry", Obs.Trace.Str "mulI");
      ("ok", Obs.Trace.Bool true);
    ];
  Alcotest.(check string)
    "jsonl"
    "{\"seq\":0,\"ev\":\"run\",\"pc\":4096,\"us\":1.5,\"entry\":\"mulI\",\"ok\":true}\n"
    (Obs.Trace.to_jsonl tr)

let test_trace_bad_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Obs.Trace.create: capacity must be > 0") (fun () ->
      ignore (Obs.Trace.create ~capacity:0))

(* ------------------------------------------------------------------ *)
(* Machine integration: engine/interpreter publish identical counts    *)

let sim_lines registry =
  Obs.Export.prometheus (Obs.Registry.snapshot registry)
  |> String.split_on_char '\n'
  |> List.filter (fun l ->
         String.length l >= 9 && String.sub l 0 9 = "hppa_sim_")

let test_engine_interpreter_parity () =
  let prog = Hppa.Millicode.resolved () in
  let run engine =
    let reg = Obs.Registry.create () in
    let config =
      { Machine.Config.default with engine; obs = Some reg }
    in
    let m = Machine.create ~config prog in
    List.iter
      (fun entry ->
        List.iter
          (fun (a, b) -> ignore (Machine.call m entry ~args:[ a; b ]))
          [ (99l, -7l); (0l, 0l); (12345l, 678l); (-1l, Int32.min_int) ])
      Hppa.Millicode.entries;
    (sim_lines reg, Machine.used_engine m)
  in
  let engine_lines, engine_used = run true in
  let interp_lines, interp_used = run false in
  Alcotest.(check bool) "engine path taken" true engine_used;
  Alcotest.(check bool) "interpreter path taken" false interp_used;
  Alcotest.(check (list string))
    "per-opcode counts identical" interp_lines engine_lines;
  Alcotest.(check bool) "counts nonempty" true (List.length engine_lines > 3)

let test_machine_profile_counters () =
  let reg = Obs.Registry.create () in
  let config = { Machine.Config.default with obs = Some reg } in
  let m = Hppa.Millicode.machine ~config () in
  ignore (Machine.call m "mulI" ~args:[ 3l; 4l ]);
  ignore (Machine.call m "mulI" ~args:[ 5l; 6l ]);
  let p = Machine.profile m in
  Alcotest.(check int) "two engine runs" 2 p.Machine.engine_runs;
  Alcotest.(check int) "one translation" 1 p.Machine.translations;
  Alcotest.(check int) "one reuse" 1 p.Machine.translate_reuses;
  Alcotest.(check bool) "cycles attributed" true
    (p.Machine.block_cycles + p.Machine.step_cycles > 0);
  (* The same numbers are visible through the registry. *)
  let samples =
    Result.get_ok
      (Obs.Export.parse_prometheus
         (Obs.Export.prometheus (Obs.Registry.snapshot reg)))
  in
  Alcotest.(check (option (float 0.0)))
    "runs via registry" (Some 2.0)
    (Obs.Export.find samples "hppa_machine_runs_total")

let test_trap_counts () =
  let reg = Obs.Registry.create () in
  let config = { Machine.Config.default with obs = Some reg } in
  let m = Hppa.Millicode.machine ~config () in
  (* divide by zero traps on both paths; counted exactly once. *)
  ignore (Machine.call m "divU" ~args:[ 7l; 0l ]);
  let stats = Machine.stats m in
  Alcotest.(check (list (pair string int)))
    "trap tally"
    [ ("divide_by_zero", 1) ]
    (Hppa_machine.Stats.by_trap stats)

(* ------------------------------------------------------------------ *)

let suite =
  [
    ( "obs:instruments",
      [
        Alcotest.test_case "counter basics" `Quick test_counter_basics;
        Alcotest.test_case "histogram percentiles" `Quick
          test_histogram_percentiles;
        Alcotest.test_case "histogram overflow" `Quick test_histogram_overflow;
        Alcotest.test_case "histogram overflow export" `Quick
          test_histogram_overflow_export;
      ] );
    ( "obs:registry",
      [
        Alcotest.test_case "interning" `Quick test_registry_interning;
        Alcotest.test_case "kind mismatch" `Quick test_registry_kind_mismatch;
        Alcotest.test_case "exact under domains+threads" `Quick
          test_registry_concurrent_exact;
        Alcotest.test_case "snapshot order" `Quick test_snapshot_order_stable;
      ] );
    ( "obs:export",
      [
        Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
        Alcotest.test_case "json golden" `Quick test_json_golden;
        Alcotest.test_case "parse round trip" `Quick test_parse_round_trip;
        Alcotest.test_case "parse rejects garbage" `Quick
          test_parse_rejects_garbage;
      ] );
    ( "obs:trace",
      [
        Alcotest.test_case "ring overflow" `Quick test_trace_overflow;
        Alcotest.test_case "jsonl shape" `Quick test_trace_jsonl;
        Alcotest.test_case "bad capacity" `Quick test_trace_bad_capacity;
      ] );
    ( "obs:machine",
      [
        Alcotest.test_case "engine/interpreter parity" `Quick
          test_engine_interpreter_parity;
        Alcotest.test_case "profile counters" `Quick
          test_machine_profile_counters;
        Alcotest.test_case "trap counts" `Quick test_trap_counts;
      ] );
  ]
