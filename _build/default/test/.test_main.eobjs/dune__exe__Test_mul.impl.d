test/test_mul.ml: Alcotest Hppa Hppa_dist Hppa_machine Hppa_word Int32 Lazy List Mul_model Mul_var Printf Program QCheck Reg Util
