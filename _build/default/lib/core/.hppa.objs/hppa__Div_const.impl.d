lib/core/div_const.ml: Array Builder Chain Chain_codegen Chain_rules Cond Div_magic Emit Hppa_word Int32 Int64 List Printf Program Reg Result
