type item = Label of string | Insn of string Insn.t
type source = item list

type resolved = {
  code : int Insn.t array;
  symbols : (string, int) Hashtbl.t;
  names : (int, string) Hashtbl.t;
}

let resolve (src : source) =
  let exception Bad of string in
  try
    let symbols = Hashtbl.create 64 in
    let names = Hashtbl.create 64 in
    let count =
      List.fold_left
        (fun addr item ->
          match item with
          | Label l ->
              if Hashtbl.mem symbols l then
                raise (Bad (Printf.sprintf "duplicate label %S" l));
              Hashtbl.add symbols l addr;
              if not (Hashtbl.mem names addr) then Hashtbl.add names addr l;
              addr
          | Insn _ -> addr + 1)
        0 src
    in
    let lookup l =
      match Hashtbl.find_opt symbols l with
      | Some a -> a
      | None -> raise (Bad (Printf.sprintf "undefined label %S" l))
    in
    let code = Array.make count Insn.Nop in
    let addr = ref 0 in
    List.iter
      (fun item ->
        match item with
        | Label _ -> ()
        | Insn i ->
            (match Insn.validate i with
            | Ok () -> ()
            | Error msg ->
                raise
                  (Bad (Printf.sprintf "instruction %d: %s" !addr msg)));
            code.(!addr) <- Insn.map_target lookup i;
            incr addr)
      src;
    Ok { code; symbols; names }
  with Bad msg -> Error msg

let resolve_exn src =
  match resolve src with
  | Ok p -> p
  | Error msg -> invalid_arg ("Program.resolve_exn: " ^ msg)

let symbol p l = Hashtbl.find_opt p.symbols l

let symbol_exn p l =
  match symbol p l with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Program.symbol_exn: no label %S" l)

let length p = Array.length p.code
let concat = List.concat

let pp_item ppf = function
  | Label l -> Format.fprintf ppf "%s:" l
  | Insn i -> Format.fprintf ppf "        %a" (Insn.pp Format.pp_print_string) i

let pp_source ppf src =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_item ppf src

let pp_resolved ppf p =
  Array.iteri
    (fun addr i ->
      (match Hashtbl.find_opt p.names addr with
      | Some l -> Format.fprintf ppf "%s:@." l
      | None -> ());
      Format.fprintf ppf "  %4d:  %a@." addr (Insn.pp Format.pp_print_int) i)
    p.code
