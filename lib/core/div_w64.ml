module Word = Hppa_word.Word

(* 64/64 divide and remainder over register pairs: X = (arg0:arg1),
   Y = (arg2:arg3). The shared core [w64$udivmod] returns the quotient
   dword in (ret0:ret1) and the remainder dword in (arg0:arg1); the four
   public entries are thin wrappers selecting one result pair.

   The unsigned core follows the classic normalization scheme (Hacker's
   Delight figure 9-5, specialised to two words):

   - yh = 0: two chained 64/32 [divU64] steps, exactly the paper's
     extended divide — q_hi, r1 = (0:xh) / yl then q_lo, r = (r1:xl) / yl.
     Both calls satisfy divU64's hi < divisor precondition.
   - yh != 0: the quotient fits one word. Normalize Y left by
     s = nlz(yh) so its top bit is set, take v1 = the high word of the
     normalized divisor, and estimate q1 = (X >> 1) / v1 with one
     [divU64] call (its high word xh >> 1 < 2^31 <= v1, so the
     precondition holds). Then q0 = (q1 << s) >> 31 is either the true
     quotient or one too large; after the guarded decrement it is exact
     or one too small, and a single compare-and-correct against
     R = X - q0 * Y finishes. The multiply-back uses two [mulU64] calls
     (q0 * yl in full, the low word of q0 * yh); q0 * Y <= X < 2^64 keeps
     it exact in 64 bits.

   Frame layout (see mul_ext.ml / mul_w64.ml): the core uses bytes
   104..143, the signed shell 164..175, the public wrappers 160..163. *)

let udivmod_source =
  let b = Builder.create ~prefix:"w64$udivmod" () in
  let l s = "w64$udivmod$" ^ s in
  let sp = Reg.sp in
  Builder.label b "w64$udivmod";
  Builder.insns b
    [
      Emit.stw Reg.mrp 104l sp;
      Emit.stw Reg.arg0 108l sp; (* xh *)
      Emit.stw Reg.arg1 112l sp; (* xl *)
      Emit.stw Reg.arg2 116l sp; (* yh *)
      Emit.stw Reg.arg3 120l sp; (* yl *)
      Emit.comib Cond.Neq 0l Reg.arg2 (l "big");
      (* -- yh = 0: two 64/32 divide steps ---------------------------- *)
      Emit.comib Cond.Eq 0l Reg.arg3 (l "zero");
      Emit.copy Reg.arg0 Reg.arg1; (* (0:xh) / yl *)
      Emit.copy Reg.arg3 Reg.arg2;
      Emit.copy Reg.r0 Reg.arg0;
      Emit.bl "divU64" Reg.mrp;
      Emit.stw Reg.ret0 124l sp; (* q_hi *)
      Emit.copy Reg.ret1 Reg.arg0; (* (r1:xl) / yl *)
      Emit.ldw 112l sp Reg.arg1;
      Emit.ldw 120l sp Reg.arg2;
      Emit.bl "divU64" Reg.mrp;
      Emit.ldw 124l sp Reg.t2;
      Emit.copy Reg.ret1 Reg.arg1; (* r_lo *)
      Emit.copy Reg.ret0 Reg.ret1; (* q_lo *)
      Emit.copy Reg.t2 Reg.ret0; (* q_hi *)
      Emit.copy Reg.r0 Reg.arg0; (* r_hi = 0 *)
      Emit.ldw 104l sp Reg.mrp;
      Emit.mret;
    ];
  Builder.label b (l "zero");
  Builder.insn b (Emit.break Hppa_machine.Trap.divide_by_zero_code);
  (* -- yh != 0: normalize and estimate ------------------------------- *)
  Builder.label b (l "big");
  Builder.insns b
    [
      Emit.copy Reg.r0 Reg.t1; (* s = 0 *)
      Emit.copy Reg.arg2 Reg.t2; (* (vh:vl) = Y *)
      Emit.copy Reg.arg3 Reg.t3;
    ];
  Builder.label b (l "norm");
  Builder.insns b
    [
      Emit.comb Cond.Lt Reg.t2 Reg.r0 (l "normed"); (* top bit set *)
      Emit.shd Reg.t2 Reg.t3 31 Reg.t2; (* (vh:vl) <<= 1 *)
      Emit.shl Reg.t3 1 Reg.t3;
      Emit.ldo 1l Reg.t1 Reg.t1; (* s += 1 *)
      Emit.b (l "norm");
    ];
  Builder.label b (l "normed");
  Builder.insns b
    [
      Emit.stw Reg.t1 128l sp; (* s *)
      Emit.shd Reg.arg0 Reg.arg1 1 Reg.arg1; (* u1 = X >> 1 *)
      Emit.shr_u Reg.arg0 1 Reg.arg0;
      Emit.copy Reg.t2 Reg.arg2; (* v1 *)
      Emit.bl "divU64" Reg.mrp; (* q1 = u1 / v1 *)
      (* q0 = (q1 << s) >> 31, as a pair shift left by s then shd. *)
      Emit.ldw 128l sp Reg.t1;
      Emit.copy Reg.r0 Reg.t2;
      Emit.copy Reg.ret0 Reg.t3;
      Emit.comib Cond.Eq 0l Reg.t1 (l "shifted");
    ];
  Builder.label b (l "shift");
  Builder.insns b
    [
      Emit.shd Reg.t2 Reg.t3 31 Reg.t2;
      Emit.shl Reg.t3 1 Reg.t3;
      Emit.addib Cond.Neq (-1l) Reg.t1 (l "shift");
    ];
  Builder.label b (l "shifted");
  Builder.insns b
    [
      Emit.shd Reg.t2 Reg.t3 31 Reg.t4; (* q0 *)
      Emit.comiclr Cond.Eq 0l Reg.t4 Reg.r0; (* q0 -= 1 unless zero *)
      Emit.ldo (-1l) Reg.t4 Reg.t4;
      Emit.stw Reg.t4 132l sp; (* q0 *)
      (* R = X - q0 * Y, exact in 64 bits. *)
      Emit.copy Reg.t4 Reg.arg0;
      Emit.ldw 120l sp Reg.arg1;
      Emit.bl "mulU64" Reg.mrp; (* q0 * yl *)
      Emit.stw Reg.ret0 136l sp; (* p_lo *)
      Emit.stw Reg.ret1 140l sp; (* p_hi *)
      Emit.ldw 132l sp Reg.arg0;
      Emit.ldw 116l sp Reg.arg1;
      Emit.bl "mulU64" Reg.mrp; (* q0 * yh (low word) *)
      Emit.ldw 140l sp Reg.t2;
      Emit.add Reg.t2 Reg.ret0 Reg.t2; (* prod_hi *)
      Emit.ldw 112l sp Reg.t3;
      Emit.ldw 136l sp Reg.t4;
      Emit.sub Reg.t3 Reg.t4 Reg.arg1; (* r_lo, borrow out *)
      Emit.ldw 108l sp Reg.t3;
      Emit.subb Reg.t3 Reg.t2 Reg.arg0; (* r_hi *)
      (* If R >= Y the estimate was one too small. *)
      Emit.ldw 116l sp Reg.t2; (* yh *)
      Emit.ldw 120l sp Reg.t3; (* yl *)
      Emit.ldw 132l sp Reg.t4; (* q0 *)
      Emit.comb Cond.Ult Reg.arg0 Reg.t2 (l "done");
      Emit.comb Cond.Neq Reg.arg0 Reg.t2 (l "fix"); (* r_hi > yh *)
      Emit.comb Cond.Ult Reg.arg1 Reg.t3 (l "done");
    ];
  Builder.label b (l "fix");
  Builder.insns b
    [
      Emit.ldo 1l Reg.t4 Reg.t4;
      Emit.sub Reg.arg1 Reg.t3 Reg.arg1;
      Emit.subb Reg.arg0 Reg.t2 Reg.arg0;
    ];
  Builder.label b (l "done");
  Builder.insns b
    [
      Emit.copy Reg.r0 Reg.ret0; (* q_hi = 0 on this path *)
      Emit.copy Reg.t4 Reg.ret1;
      Emit.ldw 104l sp Reg.mrp;
      Emit.mret;
    ];
  Builder.to_source b

(* Signed shell: record the quotient and remainder signs, divide the
   magnitudes through the unsigned core, bound-check (the only
   unrepresentable case is |q| = 2^63 with a non-negative quotient sign,
   which covers -2^63 / -1), and restore the signs. Division by zero
   traps inside the core. *)
let sdivmod_source =
  let b = Builder.create ~prefix:"w64$sdivmod" () in
  let l s = "w64$sdivmod$" ^ s in
  let sp = Reg.sp in
  Builder.label b "w64$sdivmod";
  Builder.insns b
    [
      Emit.stw Reg.mrp 164l sp;
      Emit.xor Reg.arg0 Reg.arg2 Reg.t1;
      Emit.stw Reg.t1 168l sp; (* quotient sign *)
      Emit.stw Reg.arg0 172l sp; (* remainder sign = dividend's *)
      Emit.comb Cond.Ge Reg.arg0 Reg.r0 (l "xpos");
      Emit.sub Reg.r0 Reg.arg1 Reg.arg1; (* |X|: negate the pair *)
      Emit.subb Reg.r0 Reg.arg0 Reg.arg0;
    ];
  Builder.label b (l "xpos");
  Builder.insns b
    [
      Emit.comb Cond.Ge Reg.arg2 Reg.r0 (l "ypos");
      Emit.sub Reg.r0 Reg.arg3 Reg.arg3; (* |Y| *)
      Emit.subb Reg.r0 Reg.arg2 Reg.arg2;
    ];
  Builder.label b (l "ypos");
  Builder.insns b
    [
      Emit.bl "w64$udivmod" Reg.mrp;
      Emit.ldw 168l sp Reg.t1;
      Emit.comb Cond.Ge Reg.t1 Reg.r0 (l "qpos");
      (* Negative quotient: |q| <= 2^63 always fits (2^63 maps to
         -2^63). *)
      Emit.sub Reg.r0 Reg.ret1 Reg.ret1;
      Emit.subb Reg.r0 Reg.ret0 Reg.ret0;
      Emit.b (l "qdone");
    ];
  Builder.label b (l "qpos");
  Builder.insn b (Emit.comb Cond.Lt Reg.ret0 Reg.r0 (l "ovfl")); (* |q| >= 2^63 *)
  Builder.label b (l "qdone");
  Builder.insns b
    [
      Emit.ldw 172l sp Reg.t1;
      Emit.comb Cond.Ge Reg.t1 Reg.r0 (l "rpos");
      Emit.sub Reg.r0 Reg.arg1 Reg.arg1;
      Emit.subb Reg.r0 Reg.arg0 Reg.arg0;
    ];
  Builder.label b (l "rpos");
  Builder.insns b [ Emit.ldw 164l sp Reg.mrp; Emit.mret ];
  Builder.label b (l "ovfl");
  Builder.insn b (Emit.break Div_ext.overflow_break_code);
  Builder.to_source b

let wrapper ~entry ~core ~rem =
  let b = Builder.create ~prefix:entry () in
  let sp = Reg.sp in
  Builder.label b entry;
  Builder.insns b [ Emit.stw Reg.mrp 160l sp; Emit.bl core Reg.mrp ];
  if rem then
    Builder.insns b
      [ Emit.copy Reg.arg0 Reg.ret0; Emit.copy Reg.arg1 Reg.ret1 ];
  Builder.insns b [ Emit.ldw 160l sp Reg.mrp; Emit.mret ];
  Builder.to_source b

let source =
  Program.concat
    [
      udivmod_source;
      sdivmod_source;
      wrapper ~entry:"divU64w" ~core:"w64$udivmod" ~rem:false;
      wrapper ~entry:"remU64w" ~core:"w64$udivmod" ~rem:true;
      wrapper ~entry:"divI64w" ~core:"w64$sdivmod" ~rem:false;
      wrapper ~entry:"remI64w" ~core:"w64$sdivmod" ~rem:true;
    ]

let entries = [ "divU64w"; "divI64w"; "remU64w"; "remI64w" ]
let internal = [ "w64$udivmod"; "w64$sdivmod" ]

(* Two-word references. The unsigned ones treat the int64 operands as
   unsigned 64-bit values; [None] = the routine traps (division by zero,
   or -2^63 / -1 for the signed pair). *)
let reference_unsigned x y =
  if Int64.equal y 0L then None
  else Some (Int64.unsigned_div x y, Int64.unsigned_rem x y)

let reference_signed x y =
  if Int64.equal y 0L then None
  else if Int64.equal x Int64.min_int && Int64.equal y (-1L) then None
  else Some (Int64.div x y, Int64.rem x y)
