(* Tests for the workload substrate: PRNG, operand distributions, trace
   analysis, and the Gibson-mix cost model. *)

module Word = Hppa_word.Word
open Util
open Hppa_dist

let test_prng_deterministic () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for i = 0 to 99 do
    if not (Int64.equal (Prng.next64 a) (Prng.next64 b)) then
      Alcotest.failf "streams diverge at %d" i
  done;
  let c = Prng.create 43L in
  Alcotest.(check bool) "different seeds differ" true
    (Prng.next64 (Prng.create 42L) <> Prng.next64 c)

let test_prng_copy () =
  let a = Prng.create 7L in
  ignore (Prng.next64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues the stream" (Prng.next64 a) (Prng.next64 b)

let prop_int_range =
  QCheck.Test.make ~name:"int_range stays in bounds" ~count:1000
    (QCheck.pair QCheck.small_int QCheck.small_int) (fun (a, b) ->
      let lo = min a b and hi = max a b in
      let g = Prng.create (Int64.of_int (a + (b * 1000))) in
      let v = Prng.int_range g lo hi in
      v >= lo && v <= hi)

let test_prng_float01_bounds () =
  let g = Prng.create 1L in
  for _ = 1 to 1000 do
    let f = Prng.float01 g in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float01 out of range: %f" f
  done

let test_log_uniform_shape () =
  (* Bit lengths should be roughly uniform: small values must be common
     (unlike a uniform 32-bit draw). *)
  let g = Prng.create 2L in
  let small = ref 0 and n = 20000 in
  for _ = 1 to n do
    if Word.lt_u (Operand_dist.log_uniform g) 0x10000l then incr small
  done;
  let frac = float_of_int !small /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "P(<2^16) = %.2f near 1/2" frac) true
    (frac > 0.4 && frac < 0.65)

let test_figure5_pair_invariants () =
  let g = Prng.create 3L in
  for _ = 1 to 20000 do
    let x, y = Operand_dist.figure5_pair g in
    if Word.mul_overflows_s x y then
      Alcotest.failf "pair overflows: %ld * %ld" x y;
    match Operand_dist.bucket_of_pair x y with
    | Some _ -> ()
    | None -> Alcotest.failf "pair outside buckets: %ld %ld" x y
  done

let test_figure5_bucket_weights () =
  let g = Prng.create 4L in
  let counts = Array.make 4 0 in
  let n = 40000 in
  for _ = 1 to n do
    let x, y = Operand_dist.figure5_pair g in
    match Operand_dist.bucket_of_pair x y with
    | Some b ->
        List.iteri
          (fun i b' -> if b == b' then counts.(i) <- counts.(i) + 1)
          Operand_dist.figure5_buckets
    | None -> ()
  done;
  (* 60/20/10/10 within generous tolerance. *)
  List.iteri
    (fun i (b : Operand_dist.bucket) ->
      let frac = float_of_int counts.(i) /. float_of_int n in
      if abs_float (frac -. b.weight) > 0.06 then
        Alcotest.failf "bucket %d-%d: %.3f vs %.2f" b.lo b.hi frac b.weight)
    Operand_dist.figure5_buckets

let test_positive_fraction () =
  let g = Prng.create 5L in
  let pos = ref 0 and n = 20000 in
  for _ = 1 to n do
    let x, y = Operand_dist.figure5_pair g in
    if not (Word.is_neg x || Word.is_neg y) then incr pos
  done;
  let frac = float_of_int !pos /. float_of_int n in
  (* 90 % forced positive plus a quarter of the random-sign remainder. *)
  Alcotest.(check bool) (Printf.sprintf "both-positive %.2f" frac) true
    (frac > 0.87 && frac < 0.97)

let test_trace_reproduces_section3 () =
  let g = Prng.create 6L in
  let events = Trace.generate g ~n:20000 in
  let s = Trace.analyze events in
  (* The section 3 bullets, as tolerances. *)
  Alcotest.(check bool)
    (Printf.sprintf "constant operand %.1f%% ~ 91%%" s.const_operand_pct)
    true
    (abs_float (s.const_operand_pct -. 91.0) < 2.0);
  Alcotest.(check bool)
    (Printf.sprintf "min<16 %.1f%% > 50%%" s.min_operand_lt16_pct)
    true
    (s.min_operand_lt16_pct > 50.0);
  Alcotest.(check bool)
    (Printf.sprintf "both positive %.1f%% ~ 90%%" s.both_positive_pct)
    true
    (abs_float (s.both_positive_pct -. 92.0) < 6.0);
  Alcotest.(check bool)
    (Printf.sprintf "small divisors %.1f%%" s.small_divisor_pct)
    true
    (s.small_divisor_pct > 60.0)

let test_gibson_numbers () =
  Alcotest.(check (float 1e-9)) "gibson multiply" 0.006 Gibson.gibson.multiply_freq;
  Alcotest.(check (float 1e-9)) "gibson divide" 0.002 Gibson.gibson.divide_freq;
  (* Unit costs give CPI 1. *)
  Alcotest.(check (float 1e-9)) "unit cpi" 1.0
    (Gibson.cpi Gibson.gibson ~mul_cycles:1.0 ~div_cycles:1.0);
  (* The paper's software costs barely dent whole-program CPI under the
     Gibson mix... *)
  let soft = Gibson.cpi Gibson.gibson ~mul_cycles:20.0 ~div_cycles:80.0 in
  Alcotest.(check bool) (Printf.sprintf "cpi %.3f < 1.3" soft) true (soft < 1.3);
  (* ...but a naive 168-cycle multiply would hurt a multiply-heavy mix. *)
  let naive = Gibson.cpi Gibson.multiply_heavy ~mul_cycles:168.0 ~div_cycles:200.0 in
  Alcotest.(check bool) (Printf.sprintf "naive cpi %.2f > 4" naive) true (naive > 4.0)

let test_relative_speed_monotone () =
  let s =
    Gibson.relative_speed Gibson.multiply_heavy ~baseline:(168.0, 108.0)
      ~candidate:(20.0, 40.0)
  in
  Alcotest.(check bool) (Printf.sprintf "speedup %.2f > 1" s) true (s > 1.0);
  let s' =
    Gibson.relative_speed Gibson.multiply_heavy ~baseline:(20.0, 40.0)
      ~candidate:(20.0, 40.0)
  in
  Alcotest.(check (float 1e-9)) "identity" 1.0 s'

(* --- The 64-bit operand models (W64 family). --------------------------- *)

let test_uniform64_deterministic () =
  let a = Prng.create 64L and b = Prng.create 64L in
  for i = 0 to 99 do
    if
      not
        (Int64.equal (Operand_dist.uniform64 a) (Operand_dist.uniform64 b))
    then Alcotest.failf "uniform64 streams diverge at %d" i
  done

let test_log_uniform64_shape () =
  (* Nonnegative, bounded by the requested bit budget, and small values
     common (the point of the log-uniform model). *)
  let g = Prng.create 65L in
  let small = ref 0 and n = 20000 in
  for _ = 1 to n do
    let v = Operand_dist.log_uniform64 g in
    if Int64.compare v 0L < 0 then Alcotest.failf "negative draw %Ld" v;
    if Int64.compare v 0x1_0000_0000L < 0 then incr small
  done;
  let frac = float_of_int !small /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "P(<2^32) = %.2f near 1/2" frac) true
    (frac > 0.4 && frac < 0.65);
  let g = Prng.create 66L in
  for _ = 1 to 1000 do
    let v = Operand_dist.log_uniform64 ~bits:8 g in
    if Int64.compare v 256L >= 0 || Int64.compare v 0L < 0 then
      Alcotest.failf "bits:8 draw out of range: %Ld" v
  done

let test_zipf64_divisor_invariants () =
  (* Every divisor has a non-zero high word (the slow divide path), is
     positive, and the draw is deterministic per rank. *)
  let g = Prng.create 67L in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 5000 do
    let d = Operand_dist.zipf64_divisor g in
    if Int64.compare d 0L <= 0 then Alcotest.failf "non-positive %Ld" d;
    let hi = Int64.shift_right_logical d 32 in
    if Int64.equal hi 0L then Alcotest.failf "high word zero: %Ld" d;
    (* rank determines the low word: same high word -> same divisor *)
    (match Hashtbl.find_opt seen hi with
    | Some d' when not (Int64.equal d d') ->
        Alcotest.failf "rank %Ld drew %Ld and %Ld" hi d d'
    | _ -> ());
    Hashtbl.replace seen hi d
  done;
  (* Zipf head weight: rank 1 must dominate. *)
  let g = Prng.create 68L in
  let rank1 = ref 0 and n = 10000 in
  for _ = 1 to n do
    if Operand_dist.zipf_rank g = 0 then incr rank1
  done;
  Alcotest.(check bool)
    (Printf.sprintf "P(rank 1) = %.3f" (float_of_int !rank1 /. float_of_int n))
    true
    (!rank1 > n / 20)

let test_w64_pair_invariants () =
  let g = Prng.create 69L in
  let hw0 = ref 0 and n = 20000 in
  for _ = 1 to n do
    let x, y = Operand_dist.w64_pair g in
    if Int64.compare x 0L < 0 then Alcotest.failf "negative x %Ld" x;
    if Int64.compare y 1L < 0 then Alcotest.failf "divisor %Ld below 1" y;
    if Int64.equal (Int64.shift_right_logical y 32) 0L then incr hw0
  done;
  let frac = float_of_int !hw0 /. float_of_int n in
  (* 0.5 forced by the coin, plus the log-uniform branch landing below
     2^32 about half the remaining time: expect ~0.75 overall. *)
  Alcotest.(check bool)
    (Printf.sprintf "P(high word zero) = %.2f near 3/4" frac)
    true
    (frac > 0.6 && frac < 0.9);
  (* hw0:0 never takes the high-word-zero shortcut path on y... the
     log-uniform tail can still land below 2^32, so only pin hw0:1. *)
  let g = Prng.create 70L in
  for _ = 1 to 1000 do
    let _, y = Operand_dist.w64_pair ~hw0:1.0 g in
    if not (Int64.equal (Int64.shift_right_logical y 32) 0L) then
      Alcotest.failf "hw0:1.0 drew a wide divisor %Ld" y
  done

let suite =
  [
    ( "dist:unit",
      [
        Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
        Alcotest.test_case "prng copy" `Quick test_prng_copy;
        Alcotest.test_case "float01 bounds" `Quick test_prng_float01_bounds;
        Alcotest.test_case "log-uniform shape" `Quick test_log_uniform_shape;
        Alcotest.test_case "figure5 invariants" `Quick test_figure5_pair_invariants;
        Alcotest.test_case "figure5 weights" `Quick test_figure5_bucket_weights;
        Alcotest.test_case "positive fraction" `Quick test_positive_fraction;
        Alcotest.test_case "trace section 3" `Quick test_trace_reproduces_section3;
        Alcotest.test_case "gibson numbers" `Quick test_gibson_numbers;
        Alcotest.test_case "relative speed" `Quick test_relative_speed_monotone;
      ] );
    ( "dist:w64",
      [
        Alcotest.test_case "uniform64 deterministic" `Quick
          test_uniform64_deterministic;
        Alcotest.test_case "log-uniform64 shape" `Quick
          test_log_uniform64_shape;
        Alcotest.test_case "zipf64 divisor invariants" `Quick
          test_zipf64_divisor_invariants;
        Alcotest.test_case "w64 pair invariants" `Quick
          test_w64_pair_invariants;
      ] );
    qsuite "dist:props" [ prop_int_range ];
  ]
