module Word = Hppa_word.Word
module U128 = Hppa_word.U128

type claim = { op : [ `Div | `Rem ]; signed : bool; divisor : int32 }

type verdict =
  | Certified of Certificate.t
  | Refuted of string
  | Unknown of string

let pp_verdict ppf = function
  | Certified c -> Format.fprintf ppf "certified (%s)" c.Certificate.digest
  | Refuted m -> Format.fprintf ppf "refuted: %s" m
  | Unknown m -> Format.fprintf ppf "unknown: %s" m

exception Abort of string
exception Refute of string

(* ------------------------------------------------------------------ *)
(* The abstract domain.

   The walk tracks one symbolic dividend X (the entry value of arg0,
   unsigned view) plus two derived quantities a path may introduce: the
   shifted magnitude D = (sign*X mod 2^32) >> shift (the value the
   reciprocal form multiplies) and one quotient Q per path. Register
   contents are one of:

   - [P {px; pd; pq; pc}]   px*X + pd*D + pq*Q + pc   (mod 2^32)
   - [LoF f]  the low 32 bits of (f.fa*D + f.fb) mod 2^64
   - [HiF f]  the high word (bits 32..63) of that integer mod 2^64
   - [Kmask]  +-((sign*X mod 2^32) mod 2^k), a power-of-two remainder

   Form coefficients are int64 values read mod 2^64: since Int64
   arithmetic is exactly the ring Z/2^64, the add/sub/shift transfer
   rules are unconditional ring identities even through intermediate
   negations (the emitted chains subtract via two's complement, so
   -F appears as an honest intermediate). Non-negativity and
   exactness above 32 bits are recovered at the return check from
   the 64-bit no-wrap obligation over non-negative coefficients. *)

type form = { fa : int64; fb : int64 }
type poly = { px : int32; pd : int32; pq : int32; pc : int32 }

type aval =
  | Top
  | P of poly
  | LoF of form
  | HiF of form
  | Kmask of { width : int; ksign : int; kneg : bool }

type dref = { dsign : int; dshift : int }

type qdesc =
  | Qshr of { qf : form; qs : int }  (** Q = ((qf.fa*D + qf.fb) mod 2^64) >> qs *)
  | Qsar of { bias : int32; sh : int }  (** Q = shr_s (X + bias) sh, as a word *)

(* PSW carry: known only immediately after the add/sub that produced it. *)
type carry = CTop | CAdd of form * form | CNotB of form * form

type rng = { lo : int64; hi : int64; ne : int64 option }

type state = {
  regs : aval array;
  xr : rng;
  dref : dref option;
  q : qdesc option;
  carry : carry;
}

(* ------------------------------------------------------------------ *)
(* Form and polynomial arithmetic *)

let u32 (w : int32) = Int64.logand (Int64.of_int32 w) 0xFFFF_FFFFL
let two32 = 0x1_0000_0000L

let fequal f g = Int64.equal f.fa g.fa && Int64.equal f.fb g.fb

(* Ring arithmetic mod 2^64: Int64 wrap-around is the semantics. *)
let fadd f g = Some { fa = Int64.add f.fa g.fa; fb = Int64.add f.fb g.fb }
let fsub f g = Some { fa = Int64.sub f.fa g.fa; fb = Int64.sub f.fb g.fb }

let fshl m f =
  if m < 0 || m > 31 then None
  else Some { fa = Int64.shift_left f.fa m; fb = Int64.shift_left f.fb m }

let pzero = { px = 0l; pd = 0l; pq = 0l; pc = 0l }
let pconst c = { pzero with pc = c }
let is_const p = Word.equal p.px 0l && Word.equal p.pd 0l && Word.equal p.pq 0l

let padd p q =
  {
    px = Word.add p.px q.px;
    pd = Word.add p.pd q.pd;
    pq = Word.add p.pq q.pq;
    pc = Word.add p.pc q.pc;
  }

let psub p q =
  {
    px = Word.sub p.px q.px;
    pd = Word.sub p.pd q.pd;
    pq = Word.sub p.pq q.pq;
    pc = Word.sub p.pc q.pc;
  }

let pshl p k =
  {
    px = Word.shl p.px k;
    pd = Word.shl p.pd k;
    pq = Word.shl p.pq k;
    pc = Word.shl p.pc k;
  }

(* ------------------------------------------------------------------ *)
(* State helpers *)

(* When D = sign*X (shift 0), fold any D coefficient into the X one so
   shape matches are canonical. *)
let norm_poly st p =
  if Word.equal p.pd 0l then p
  else
    match st.dref with
    | Some { dsign; dshift = 0 } ->
        let coef = if dsign >= 0 then p.pd else Word.neg p.pd in
        { p with px = Word.add p.px coef; pd = 0l }
    | _ -> p

let norm st v = match v with P p -> P (norm_poly st p) | v -> v

let av st r =
  if Reg.equal r Reg.r0 then P pzero else norm st st.regs.(Reg.to_int r)

let assign st r v =
  if Reg.equal r Reg.r0 then st
  else begin
    let regs = Array.copy st.regs in
    regs.(Reg.to_int r) <- v;
    { st with regs }
  end

let ctop st = { st with carry = CTop }

(* The unsigned interval D ranges over on this path. *)
let drange st =
  match st.dref with
  | None -> (0L, 0L)
  | Some { dsign = 1; dshift } ->
      ( Int64.shift_right_logical st.xr.lo dshift,
        Int64.shift_right_logical st.xr.hi dshift )
  | Some { dshift; _ } ->
      ( Int64.shift_right_logical (Int64.sub two32 st.xr.hi) dshift,
        Int64.shift_right_logical (Int64.sub two32 st.xr.lo) dshift )

(* Demotion LoF -> polynomial is always sound mod 2^32. *)
let to_poly st v =
  match norm st v with
  | P p -> Some p
  | LoF f ->
      Some
        (norm_poly st
           { pzero with pd = Int64.to_int32 f.fa; pc = Int64.to_int32 f.fb })
  | _ -> None

(* A high word consumed by ordinary 32-bit arithmetic names the path
   quotient (the s = 32 case, where no final extract follows): the
   register then IS Q, and a multiply-back chain can run over it as a
   polynomial. Transactional like [lift]. *)
let name_hi st v : (state * poly) option =
  match norm st v with
  | HiF f -> (
      match st.q with
      | None ->
          Some
            ( { st with q = Some (Qshr { qf = f; qs = 32 }) },
              { pzero with pq = 1l } )
      | Some (Qshr { qf; qs = 32 }) when fequal qf f ->
          Some (st, { pzero with pq = 1l })
      | Some _ -> None)
  | v -> Option.map (fun p -> (st, p)) (to_poly st v)

(* Recover an exact form from a register, possibly electing the dividend
   itself as the D base (recorded in dref). Transactional: the returned
   state carries the dref update and must be used only when the whole
   enclosing rule succeeds. *)
let lift st v : (state * form) option =
  match norm st v with
  | LoF f -> Some (st, f)
  | P p when Word.equal p.pq 0l -> (
      if Word.equal p.px 0l && Word.equal p.pd 0l then
        Some (st, { fa = 0L; fb = u32 p.pc })
      else if Word.equal p.px 0l then
        match st.dref with
        | Some _ -> Some (st, { fa = u32 p.pd; fb = u32 p.pc })
        | None -> None
      else if Word.equal p.pd 0l && st.dref = None then
        if Word.equal p.px 1l then
          Some
            ( { st with dref = Some { dsign = 1; dshift = 0 } },
              { fa = 1L; fb = u32 p.pc } )
        else if Word.equal p.px (-1l) && Word.equal p.pc 0l && st.xr.lo >= 1L
        then
          Some
            ( { st with dref = Some { dsign = -1; dshift = 0 } },
              { fa = 1L; fb = 0L } )
        else None
      else None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Transfer rules *)

(* form value at the top of the D range; used to justify a constant-0
   register standing in for a high word *)
let hi32_is_zero st f =
  if f.fa < 0L || f.fb < 0L then false
  else if f.fa <> 0L && st.dref = None then false
  else
    let _, dhi = drange st in
    let v = U128.add (U128.mul_64_64 f.fa dhi) (U128.of_int64 f.fb) in
    U128.compare v (U128.of_int64 two32) < 0

let do_add st va vb ~shift t =
  let formrule =
    match lift st va with
    | None -> None
    | Some (st1, f) -> (
        match lift st1 vb with
        | None -> None
        | Some (st2, g) -> (
            match fshl shift f with
            | None -> None
            | Some fs -> (
                match fadd fs g with
                | None -> None
                | Some sum ->
                    Some { (assign st2 t (LoF sum)) with carry = CAdd (fs, g) }
                )))
  in
  match formrule with
  | Some st' -> st'
  | None -> (
      match name_hi st va with
      | Some (st1, p) -> (
          match name_hi st1 vb with
          | Some (st2, q) -> ctop (assign st2 t (P (padd (pshl p shift) q)))
          | None -> ctop (assign st1 t Top))
      | None -> ctop (assign st t Top))

let do_sub st a b t =
  let va = av st a and vb = av st b in
  let special =
    if Reg.equal a Reg.r0 then
      match norm st vb with
      | HiF f when st.q = None ->
          (* negating a high word names the quotient it holds *)
          Some
            (ctop
               (assign
                  { st with q = Some (Qshr { qf = f; qs = 32 }) }
                  t
                  (P { pzero with pq = -1l })))
      | Kmask k -> Some (ctop (assign st t (Kmask { k with kneg = not k.kneg })))
      | P p ->
          (* negating a bare polynomial must not elect a dividend base:
             the magnitude normalization of signed plans negates X
             before the path sign is folded into D *)
          Some (ctop (assign st t (P (psub pzero p))))
      | _ -> None
    else None
  in
  match special with
  | Some st' -> st'
  | None -> (
      let formrule =
        match lift st va with
        | None -> None
        | Some (st1, f) -> (
            match lift st1 vb with
            | None -> None
            | Some (st2, g) -> (
                match fsub f g with
                | None -> None
                | Some d ->
                    Some { (assign st2 t (LoF d)) with carry = CNotB (f, g) }))
      in
      match formrule with
      | Some st' -> st'
      | None -> (
          match name_hi st va with
          | Some (st1, p) -> (
              match name_hi st1 vb with
              | Some (st2, q) -> ctop (assign st2 t (P (psub p q)))
              | None -> ctop (assign st1 t Top))
          | None -> ctop (assign st t Top)))

(* an operand supplies the high word of form [h] if it is that high word
   syntactically, or a constant zero while h never reaches 2^32 *)
let supplies_hi st h v =
  match norm st v with
  | HiF h' -> fequal h h'
  | v -> (
      match to_poly st v with
      | Some p when is_const p && Word.equal p.pc 0l -> hi32_is_zero st h
      | _ -> false)

let do_addc st a b t =
  let va = av st a and vb = av st b in
  match st.carry with
  | CAdd (f, g)
    when (supplies_hi st f va && supplies_hi st g vb)
         || (supplies_hi st g va && supplies_hi st f vb) -> (
      match fadd f g with
      | Some sum -> ctop (assign st t (HiF sum))
      | None -> ctop (assign st t Top))
  | _ -> ctop (assign st t Top)

let do_subb st a b t =
  let va = av st a and vb = av st b in
  match st.carry with
  | CNotB (f, g) when supplies_hi st f va && supplies_hi st g vb -> (
      match fsub f g with
      | Some d -> ctop (assign st t (HiF d))
      | None -> ctop (assign st t Top))
  | _ -> ctop (assign st t Top)

(* Re-electing D after a logical shift of the (possibly negated) dividend
   is only allowed while nothing in flight refers to the old D. *)
let rebase_ok st =
  st.dref = None && st.q = None
  && Array.for_all
       (fun v ->
         match v with
         | LoF _ | HiF _ -> false
         | P p -> Word.equal p.pd 0l
         | Top | Kmask _ -> true)
       st.regs

let do_extr st ~signed ~r ~pos ~len ~t : state list =
  let give st v = [ ctop (assign st t v) ] in
  let v0 = norm st (av st r) in
  if pos = 0 && len = 32 then give st v0
  else
    match v0 with
    | HiF f when (not signed) && len = 32 - pos && pos >= 1 && st.q = None ->
        (* the final shift: name the quotient *)
        let st' = { st with q = Some (Qshr { qf = f; qs = 32 + pos }) } in
        give st' (P { pzero with pq = 1l })
    | v0 -> (
        match to_poly st v0 with
        | None -> give st Top
        | Some p ->
            if is_const p then
              let c =
                if signed then Word.extract_s p.pc ~pos ~len
                else Word.extract_u p.pc ~pos ~len
              in
              give st (P (pconst c))
            else if
              Word.equal p.pd 0l && Word.equal p.pq 0l
              && (Word.equal p.px 1l || Word.equal p.px (-1l))
            then
              let sg = if Word.equal p.px 1l then 1 else -1 in
              let nonneg = st.xr.hi <= 0x7FFF_FFFFL in
              let negat = st.xr.lo >= 0x8000_0000L in
              if
                (not signed) && pos = 0 && len >= 1 && len <= 31
                && Word.equal p.pc 0l
              then give st (Kmask { width = len; ksign = sg; kneg = false })
              else if len <> 32 - pos || pos < 1 then give st Top
              else if
                (* logical shift, or arithmetic on a known-non-negative
                   value, of +-X: re-elect D *)
                ((not signed) || (nonneg && sg = 1))
                && Word.equal p.pc 0l && rebase_ok st
                && (sg = 1 || st.xr.lo >= 1L)
              then
                let st' =
                  { st with dref = Some { dsign = sg; dshift = pos } }
                in
                give st' (P { pzero with pd = 1l })
              else if signed && pos = 31 && Word.equal p.pc 0l && sg = 1 then
                (* sign-bit broadcast: fork the path on the sign *)
                let mk lo hi c =
                  if lo > hi || (lo = hi && st.xr.ne = Some lo) then []
                  else
                    give
                      { st with xr = { st.xr with lo; hi } }
                      (P (pconst c))
                in
                if nonneg then give st (P (pconst 0l))
                else if negat then give st (P (pconst (-1l)))
                else
                  mk st.xr.lo 0x7FFF_FFFFL 0l
                  @ mk 0x8000_0000L st.xr.hi (-1l)
              else if signed && pos >= 1 && pos <= 30 && sg = 1 && st.q = None
              then
                (* arithmetic shift of X + bias: name the quotient *)
                let st' =
                  { st with q = Some (Qsar { bias = p.pc; sh = pos }) }
                in
                give st' (P { pzero with pq = 1l })
              else give st Top
            else give st Top)

let do_ldo st imm base t =
  let v = av st base in
  if Word.equal imm 0l then assign st t v (* copy; PSW carry untouched *)
  else
    match v with
    | LoF f -> (
        match fadd f { fa = 0L; fb = u32 imm } with
        | Some g -> assign st t (LoF g)
        | None -> assign st t Top)
    | v -> (
        match to_poly st v with
        | Some p -> assign st t (P { p with pc = Word.add p.pc imm })
        | None -> assign st t Top)

let transfer st (i : int Insn.t) : state list option =
  let one st = Some [ st ] in
  (match i with
  | Alu { trap_ov = true; _ } | Addi { trap_ov = true; _ }
  | Subi { trap_ov = true; _ } ->
      raise (Abort "overflow-trapping instruction on a certified path")
  | _ -> ());
  match i with
  | Alu { op = Add; a; b; t; _ } -> one (do_add st (av st a) (av st b) ~shift:0 t)
  | Alu { op = Shadd m; a; b; t; _ } ->
      one (do_add st (av st a) (av st b) ~shift:m t)
  | Addi { imm; a; t; _ } ->
      one (do_add st (av st a) (P (pconst imm)) ~shift:0 t)
  | Alu { op = Sub; a; b; t; _ } -> one (do_sub st a b t)
  | Subi { imm; a; t; _ } -> (
      match to_poly st (av st a) with
      | Some p -> one (ctop (assign st t (P (psub (pconst imm) p))))
      | None -> one (ctop (assign st t Top)))
  | Alu { op = Addc; a; b; t; _ } -> one (do_addc st a b t)
  | Alu { op = Subb; a; b; t; _ } -> one (do_subb st a b t)
  | Alu { op = And | Or | Xor | Andcm; t; _ } -> one (ctop (assign st t Top))
  | Ds { t; _ } -> one (ctop (assign st t Top))
  | Comclr { t; _ } | Comiclr { t; _ } -> one (ctop (assign st t (P pzero)))
  | Extr { signed; r; pos; len; t; _ } -> Some (do_extr st ~signed ~r ~pos ~len ~t)
  | Zdep { r; pos; len; t } ->
      if len = 32 - pos then
        match norm st (av st r) with
        | LoF f -> (
            match fshl pos f with
            | Some g -> one (assign st t (LoF g))
            | None -> one (assign st t Top))
        | v -> (
            match name_hi st v with
            | Some (st1, p) -> one (assign st1 t (P (pshl p pos)))
            | None -> one (assign st t Top))
      else one (assign st t Top)
  | Shd { a; b; sa; t } -> (
      match (norm st (av st a), norm st (av st b)) with
      | HiF f, LoF g when fequal f g && sa >= 1 && sa <= 31 -> (
          match fshl (32 - sa) f with
          | Some h -> one (assign st t (HiF h))
          | None -> one (assign st t Top))
      | _ -> one (assign st t Top))
  | Ldil { imm; t } -> one (ctop (assign st t (P (pconst imm))))
  | Ldo { imm; base; t } -> one (do_ldo st imm base t)
  | Ldw { t; _ } | Ldaddr { t; _ } -> one (ctop (assign st t Top))
  | Stw _ -> one (ctop st)
  | Addib { imm; a; _ } -> (
      match to_poly st (av st a) with
      | Some p -> one (ctop (assign st a (P { p with pc = Word.add p.pc imm })))
      | None -> one (ctop (assign st a Top)))
  | Comb _ | Comib _ | B _ | Bv _ -> one (ctop st)
  | Bl { t; _ } | Blr { t; _ } -> one (ctop (assign st t Top))
  | Break _ -> None
  | Nop -> one (ctop st)

(* ------------------------------------------------------------------ *)
(* Concrete evaluation (the dividend pinned to one word) *)

let eval_concrete st v : int32 option =
  if st.xr.lo <> st.xr.hi then None
  else
    let x64 = st.xr.lo in
    let xw = Int64.to_int32 x64 in
    let dval =
      match st.dref with
      | None -> None
      | Some { dsign; dshift } ->
          let base =
            if dsign = 1 then x64 else Int64.logand (Int64.neg x64) 0xFFFF_FFFFL
          in
          Some (Int64.shift_right_logical base dshift)
    in
    let fval64 f =
      (* native Int64 ops are the mod-2^64 semantics of a form *)
      match dval with
      | Some d -> Some (Int64.add (Int64.mul f.fa d) f.fb)
      | None -> if f.fa = 0L then Some f.fb else None
    in
    let qval =
      match st.q with
      | None -> None
      | Some (Qshr { qf; qs }) -> (
          match fval64 qf with
          | Some lo -> Some (Int64.shift_right_logical lo qs)
          | None -> None)
      | Some (Qsar { bias; sh }) ->
          Some (u32 (Word.shr_s (Word.add xw bias) sh))
    in
    match norm st v with
    | P p ->
        let term coef v64 acc =
          match v64 with
          | _ when Word.equal coef 0l -> Some acc
          | Some v -> Some (Word.add acc (Word.mul_lo coef (Int64.to_int32 v)))
          | None -> None
        in
        Option.bind (term p.px (Some x64) p.pc) (fun acc ->
            Option.bind (term p.pd dval acc) (fun acc -> term p.pq qval acc))
    | LoF f -> Option.map Int64.to_int32 (fval64 f)
    | HiF f ->
        Option.map
          (fun lo -> Int64.to_int32 (Int64.shift_right_logical lo 32))
          (fval64 f)
    | Kmask { width; ksign; kneg } ->
        let b = if ksign = 1 then xw else Word.neg xw in
        let m = Word.extract_u b ~pos:0 ~len:width in
        Some (if kneg then Word.neg m else m)
    | Top -> None

(* ------------------------------------------------------------------ *)
(* Path refinement at compare-and-nullify / compare-and-branch *)

let intersect r (lo', hi') =
  let lo = max r.lo lo' and hi = min r.hi hi' in
  if lo > hi then None
  else if lo = hi && r.ne = Some lo then None
  else Some { r with lo; hi }

(* value of an operand when the path already determines it *)
let conc st v =
  match norm st v with
  | P p when is_const p -> Some p.pc
  | v -> eval_concrete st v

let flip = function
  | Cond.Lt -> Cond.Gt
  | Cond.Le -> Cond.Ge
  | Cond.Gt -> Cond.Lt
  | Cond.Ge -> Cond.Le
  | Cond.Ult -> Cond.Ugt
  | Cond.Ule -> Cond.Uge
  | Cond.Ugt -> Cond.Ult
  | Cond.Uge -> Cond.Ule
  | c -> c

(* left cond right must hold; [post] is the state after the compare's own
   register effect. None drops an impossible edge. *)
let constrain st post cond left right =
  match (conc st left, conc st right) with
  | Some l, Some r -> if Cond.eval cond l r then Some post else None
  | _ -> (
      let on_x cond c =
        (* X cond c *)
        let cu = u32 c in
        match cond with
        | Cond.Eq -> intersect post.xr (cu, cu)
        | Cond.Neq ->
            if post.xr.ne = None then
              let r = { post.xr with ne = Some cu } in
              if r.lo = r.hi && r.ne = Some r.lo then None else Some r
            else Some post.xr
        | Cond.Ge when Word.equal c 0l -> intersect post.xr (0L, 0x7FFF_FFFFL)
        | Cond.Lt when Word.equal c 0l ->
            intersect post.xr (0x8000_0000L, 0xFFFF_FFFFL)
        | Cond.Ult ->
            if Word.equal c 0l then None
            else intersect post.xr (0L, Int64.sub cu 1L)
        | Cond.Ule -> intersect post.xr (0L, cu)
        | Cond.Ugt -> intersect post.xr (Int64.add cu 1L, 0xFFFF_FFFFL)
        | Cond.Uge -> intersect post.xr (cu, 0xFFFF_FFFFL)
        | Cond.Always -> Some post.xr
        | Cond.Never -> None
        | _ -> Some post.xr
      in
      let is_x v =
        match norm st v with
        | P p ->
            Word.equal p.px 1l && Word.equal p.pd 0l && Word.equal p.pq 0l
            && Word.equal p.pc 0l
        | _ -> false
      in
      match (is_x left, conc st right, is_x right, conc st left) with
      | true, Some c, _, _ ->
          Option.map (fun xr -> { post with xr }) (on_x cond c)
      | _, _, true, Some c ->
          Option.map (fun xr -> { post with xr }) (on_x (flip cond) c)
      | _ -> Some post)

type side = STrue | SFalse

let refine st post (i : int Insn.t) side =
  let cond_of c = match side with STrue -> c | SFalse -> Cond.negate c in
  match i with
  | Comclr { cond; a; b; _ } ->
      constrain st post (cond_of cond) (av st a) (av st b)
  | Comiclr { cond; imm; a; _ } ->
      constrain st post (cond_of cond) (P (pconst imm)) (av st a)
  | Comb { cond; a; b; _ } ->
      constrain st post (cond_of cond) (av st a) (av st b)
  | Comib { cond; imm; a; _ } ->
      constrain st post (cond_of cond) (P (pconst imm)) (av st a)
  | _ -> Some post

(* which truth value of the compare leads to this successor? *)
let side_of (i : int Insn.t) addr next =
  let at a = match next with Cfg.Insn t -> t = a | _ -> false in
  match i with
  | Comclr _ | Comiclr _ ->
      if at (addr + 1) then Some SFalse
      else if at (addr + 2) then Some STrue
      else None
  | Comb { target; _ } | Comib { target; _ } ->
      if target = addr + 1 then None
      else if at target then Some STrue
      else if at (addr + 1) then Some SFalse
      else None
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The return-value check *)

let pp_u128 v =
  if v.U128.hi = 0L then Printf.sprintf "%Lu" v.U128.lo
  else Printf.sprintf "%Lu*2^64+%Lu" v.U128.hi v.U128.lo

(* Discharge the coverage and no-wrap obligations for a recovered
   reciprocal form: floor((fa*d + fb) / 2^s) = floor(d / y) for every d
   in the path's D range. Returns y and the proof transcript. *)
let quotient_proof st f s =
  let fail m = raise (Abort m) in
  if s < 1 || s > 62 then fail (Printf.sprintf "shift %d out of range" s);
  let a = f.fa and b = f.fb in
  if a < 1L then fail "recovered multiplier a < 1";
  if b < 0L then fail "recovered addend b < 0";
  let r = Int64.add (Int64.sub b a) 1L in
  if r < 1L then fail "recovered adjustment r = b - a + 1 < 1";
  let z = Int64.shift_left 1L s in
  let zr = Int64.sub z r in
  if zr < 1L then fail "2^s <= r";
  if Int64.rem zr a <> 0L then fail "a does not divide 2^s - r";
  let y = Int64.div zr a in
  if r > Int64.sub y 1L then fail "r > y - 1";
  let k = Int64.div b r in
  let coverage = U128.mul_64_64 (Int64.add k 1L) y in
  let dlo, dhi = drange st in
  if U128.compare coverage (U128.of_int64 (Int64.add dhi 1L)) < 0 then
    fail
      (Printf.sprintf "coverage (K+1)*y = %s < %Ld = dmax+1" (pp_u128 coverage)
         (Int64.add dhi 1L));
  let top = U128.add (U128.mul_64_64 a dhi) (U128.of_int64 b) in
  if top.U128.hi <> 0L then fail "a*dmax + b wraps 64 bits";
  ( y,
    [
      Printf.sprintf
        "reciprocal form a=%Ld b=%Ld s=%d: z=2^%d = a*%Ld + %Ld, r=%Ld in \
         [1,y-1], K=floor(b/r)=%Ld"
        a b s s y r r k;
      Printf.sprintf "coverage (K+1)*y = %s >= dmax+1 = %Ld (d in [%Ld, %Ld])"
        (pp_u128 coverage) (Int64.add dhi 1L) dlo dhi;
      Printf.sprintf "no-wrap a*dmax + b = %s < 2^64" (pp_u128 top);
    ] )

let sign_of_path st =
  if st.xr.hi <= 0x7FFF_FFFFL then Some 1
  else if st.xr.lo >= 0x8000_0000L then Some (-1)
  else None

(* sub-intervals of the path range on which the reference division is
   monotone: split signed ranges at the sign boundary, and carve out the
   excluded point *)
let monotone_blocks ~signed r =
  let base =
    if signed then
      [ (max r.lo 0L, min r.hi 0x7FFF_FFFFL);
        (max r.lo 0x8000_0000L, min r.hi 0xFFFF_FFFFL) ]
    else [ (r.lo, r.hi) ]
  in
  List.concat_map
    (fun (l, h) ->
      if l > h then []
      else
        match r.ne with
        | Some n when n >= l && n <= h ->
            List.filter
              (fun (l, h) -> l <= h)
              [ (l, Int64.sub n 1L); (Int64.add n 1L, h) ]
        | _ -> [ (l, h) ])
    base

let step_budget = 60_000

let certify cfg ~entry ~claim =
  if Word.equal claim.divisor 0l then Unknown "claim divides by zero"
  else begin
    let m64 =
      if claim.signed then Int64.abs (Int64.of_int32 claim.divisor)
      else u32 claim.divisor
    in
    let ysign = if claim.signed && Word.is_neg claim.divisor then -1 else 1 in
    let reference xw =
      let q, r =
        if claim.signed then Word.divmod_trunc_s xw claim.divisor
        else Word.divmod_u xw claim.divisor
      in
      match claim.op with `Div -> q | `Rem -> r
    in
    let transcript = ref [] in
    let add_lines ls =
      List.iter
        (fun l -> if not (List.mem l !transcript) then transcript := !transcript @ [ l ])
        ls
    in
    let returned = ref false in
    (* one certified path: the return value in ret0 matches the claim
       over the whole path range, by closed-form argument *)
    let check_ret_prove st =
      returned := true;
      let fail m = raise (Abort m) in
      let sx = sign_of_path st in
      let path_tag =
        Printf.sprintf "path x in [0x%Lx, 0x%Lx]%s" st.xr.lo st.xr.hi
          (match st.xr.ne with
          | Some n -> Printf.sprintf " \\ {0x%Lx}" n
          | None -> "")
      in
      let expected_coef () =
        if not claim.signed then 1l
        else
          match sx with
          | Some s -> Int32.of_int (s * ysign)
          | None -> fail "signed path does not determine the dividend sign"
      in
      let require_dsign () =
        match (st.dref, claim.signed, sx) with
        | Some { dsign = 1; _ }, false, _ -> ()
        | Some { dsign; _ }, true, Some s when dsign = s -> ()
        | Some _, false, _ -> fail "negated dividend under an unsigned claim"
        | Some _, true, _ -> fail "dividend magnitude does not match path sign"
        | None, _, _ -> fail "no dividend base on this path"
      in
      let total_divisor y_q =
        let dshift =
          match st.dref with Some d -> d.dshift | None -> fail "no base"
        in
        if y_q > two32 || dshift > 32 then fail "recovered divisor too large"
        else
          let t = Int64.shift_left y_q dshift in
          if t <> m64 then
            fail
              (Printf.sprintf "proves division by %Ld, claim divides by %Ld" t
                 m64);
          dshift
      in
      let quotient_checks qc =
        match st.q with
        | Some (Qshr { qf; qs }) ->
            if claim.op <> `Div then fail "bare quotient under a remainder claim";
            let y_q, lines = quotient_proof st qf qs in
            require_dsign ();
            let dshift = total_divisor y_q in
            if not (Word.equal qc (expected_coef ())) then
              fail "quotient sign does not match the claim";
            add_lines (path_tag :: lines);
            if dshift > 0 then
              add_lines
                [
                  Printf.sprintf
                    "even divisor: pre-shift %d composes to y*2^%d = %Ld"
                    dshift dshift m64;
                ]
        | Some (Qsar { bias; sh }) ->
            (* shr_s (x + bias) sh already truncates toward zero on both
               signs (bias 2^k - 1 when x < 0, bias 0 when x >= 0), so
               the register holds trunc(x / 2^sh) directly: the expected
               coefficient is the divisor's sign alone. *)
            if claim.op <> `Div || not claim.signed then
              fail "arithmetic-shift quotient outside a signed divide claim";
            if sh < 1 || sh > 30 then fail "arithmetic shift out of range";
            (match sx with
            | Some -1 ->
                if
                  not
                    (Word.equal bias (Int32.sub (Int32.shift_left 1l sh) 1l))
                then fail "negative-path bias is not 2^k - 1"
            | Some 1 ->
                if not (Word.equal bias 0l) then
                  fail "non-negative path carries a rounding bias"
            | _ -> fail "signed path does not determine the dividend sign");
            if m64 <> Int64.shift_left 1L sh then
              fail "claimed divisor is not the proved power of two";
            if not (Word.equal qc (Int32.of_int ysign)) then
              fail "quotient sign does not match the claim";
            add_lines
              [
                path_tag;
                Printf.sprintf
                  "asr identity: trunc(x / 2^%d) = (x + %ld) asr %d on this \
                   sign"
                  sh bias sh;
              ]
        | None -> fail "quotient register with no quotient on the path"
      in
      match av st Reg.ret0 with
      | HiF f ->
          (* s = 32: the high word is the quotient *)
          if claim.op <> `Div then fail "bare quotient under a remainder claim";
          let y_q, lines = quotient_proof st f 32 in
          require_dsign ();
          let _ = total_divisor y_q in
          if not (Word.equal (expected_coef ()) 1l) then
            fail "un-negated quotient on a negated path";
          add_lines (path_tag :: lines)
      | P p when is_const p -> (
          let blocks = monotone_blocks ~signed:claim.signed st.xr in
          if blocks = [] then ()
          else
            List.iter
              (fun (l, h) ->
                let fl = reference (Int64.to_int32 l)
                and fh = reference (Int64.to_int32 h) in
                if claim.op = `Rem && l <> h && m64 <> 1L then
                  fail "constant remainder over a wide path"
                else if not (Word.equal fl fh) then
                  fail "constant return over a non-constant quotient range"
                else if not (Word.equal fl p.pc) then
                  raise
                    (Refute
                       (Printf.sprintf
                          "for x = 0x%Lx the routine returns %ld, not %ld" l
                          p.pc fl))
                else
                  add_lines
                    [
                      Printf.sprintf
                        "%s: constant %ld matches reference at both endpoints \
                         of [0x%Lx, 0x%Lx] (monotone)"
                        path_tag p.pc l h;
                    ])
              blocks)
      | P p
        when Word.equal p.pd 0l && Word.equal p.pq 0l && Word.equal p.pc 0l ->
          (* +-x itself: |divisor| = 1 *)
          if claim.op <> `Div then fail "dividend returned under a remainder claim";
          if m64 <> 1L then fail "dividend returned but |divisor| > 1";
          let want = if claim.signed then Int32.of_int ysign else 1l in
          if not (Word.equal p.px want) then fail "wrong sign for division by one";
          add_lines
            [ path_tag ^ ": identity/negation is division by the claimed unit" ]
      | P p
        when Word.equal p.px 0l && Word.equal p.pq 0l && Word.equal p.pc 0l
             && (Word.equal p.pd 1l || Word.equal p.pd (-1l)) ->
          (* a pure shifted magnitude: power-of-two division *)
          if claim.op <> `Div then fail "shifted dividend under a remainder claim";
          require_dsign ();
          let dshift =
            match st.dref with Some d -> d.dshift | None -> assert false
          in
          if dshift < 1 || m64 <> Int64.shift_left 1L dshift then
            fail "claimed divisor is not the proved power of two";
          if not (Word.equal p.pd (expected_coef ())) then
            fail "quotient sign does not match the claim";
          add_lines
            [
              path_tag;
              Printf.sprintf "power of two: |x| >> %d = |x| / %Ld" dshift m64;
            ]
      | P p
        when Word.equal p.pd 0l && Word.equal p.px 0l && Word.equal p.pc 0l
             && not (Word.equal p.pq 0l) ->
          quotient_checks p.pq
      | P p
        when Word.equal p.px 1l && Word.equal p.pd 0l && Word.equal p.pc 0l
             && not (Word.equal p.pq 0l) -> (
          (* x - q*y: the remainder *)
          match st.q with
          | Some (Qshr { qf; qs }) ->
              if claim.op <> `Rem then fail "remainder shape under a divide claim";
              let y_q, lines = quotient_proof st qf qs in
              require_dsign ();
              let _ = total_divisor y_q in
              let sxv =
                if not claim.signed then 1
                else
                  match sx with
                  | Some s -> s
                  | None -> fail "signed path does not determine the dividend sign"
              in
              let want =
                Int64.to_int32 (Int64.neg (Int64.mul (Int64.of_int sxv) m64))
              in
              if not (Word.equal p.pq want) then
                fail "multiply-back constant does not match the divisor";
              add_lines (path_tag :: lines);
              add_lines
                [
                  Printf.sprintf
                    "remainder: x - %Ld*floor(|x|/%Ld) rebuilt exactly" m64 m64;
                ]
          | _ -> fail "remainder shape with no quotient on the path")
      | Kmask { width; ksign; kneg } ->
          if claim.op <> `Rem then fail "masked dividend under a divide claim";
          if width < 1 || m64 <> Int64.shift_left 1L width then
            fail "claimed divisor is not the proved power of two";
          if not claim.signed then begin
            if ksign <> 1 || kneg then fail "negated mask under an unsigned claim"
          end
          else begin
            match sx with
            | Some s when ksign = s && kneg = (s = -1) -> ()
            | Some _ -> fail "mask sign does not match path sign"
            | None -> fail "signed path does not determine the dividend sign"
          end;
          add_lines
            [
              path_tag;
              Printf.sprintf
                "power-of-two remainder: low %d bits of |x|, sign of x" width;
            ]
      | _ -> fail "return value leaves the certified domain"
    in
    let check_ret_probe st =
      returned := true;
      match eval_concrete st (av st Reg.ret0) with
      | None -> ()
      | Some got ->
          let xw = Int64.to_int32 st.xr.lo in
          let want = reference xw in
          if not (Word.equal got want) then
            raise
              (Refute
                 (Printf.sprintf
                    "for x = 0x%Lx the routine returns %ld, not %ld" st.xr.lo
                    got want))
    in
    let walk check xlo xhi =
      let init =
        let regs = Array.make 32 Top in
        regs.(Reg.to_int Reg.arg0) <- P { pzero with px = 1l };
        {
          regs;
          xr = { lo = xlo; hi = xhi; ne = None };
          dref = None;
          q = None;
          carry = CTop;
        }
      in
      let seen = Hashtbl.create 256 in
      let steps = ref 0 in
      let rec visit node s =
        if not (Hashtbl.mem seen (node, s)) then begin
          Hashtbl.replace seen (node, s) ();
          incr steps;
          if !steps > step_budget then
            raise (Abort "path explosion: state budget exhausted");
          match node with
          | Cfg.Summary _ -> raise (Abort "routine makes a call")
          | Cfg.Tail _ -> raise (Abort "routine makes a tail call")
          | Cfg.Insn a | Cfg.Slot (a, _) -> (
              let i = Cfg.insn cfg a in
              match transfer s i with
              | None -> () (* certain trap: the path never returns *)
              | Some posts ->
                  List.iter
                    (fun s' ->
                      List.iter
                        (fun e ->
                          match e with
                          | Cfg.Trap -> ()
                          | Cfg.Ret -> check s'
                          | Cfg.Off_image ->
                              raise (Abort "control may leave the program image")
                          | Cfg.Indirect -> raise (Abort "indirect branch")
                          | Cfg.Step next -> (
                              let refined =
                                match node with
                                | Cfg.Slot _ -> Some s'
                                | _ -> (
                                    match side_of i a next with
                                    | Some sd -> refine s s' i sd
                                    | None -> Some s')
                              in
                              match refined with
                              | Some s'' -> visit next s''
                              | None -> ()))
                        (Cfg.succs cfg node))
                    posts)
        end
      in
      visit (Cfg.Insn entry) init
    in
    let witnesses () =
      let m = m64 in
      let largest = Int64.mul (Int64.div 0xFFFF_FFFFL m) m in
      let around v = [ Int64.sub v 1L; v; Int64.add v 1L ] in
      let base =
        [ 0L; 1L; 0x7FFF_FFFFL; 0x8000_0000L; 0x8000_0001L; 0xFFFF_FFFFL ]
        @ around m
        @ around (Int64.mul 2L m)
        @ around largest
      in
      let negs =
        if claim.signed then
          List.map (fun v -> Int64.logand (Int64.neg v) 0xFFFF_FFFFL) base
        else []
      in
      List.sort_uniq compare
        (List.filter (fun v -> v >= 0L && v <= 0xFFFF_FFFFL) (base @ negs))
    in
    let probe reason =
      let rec go = function
        | [] -> Unknown reason
        | w :: ws -> (
            match walk check_ret_probe w w with
            | () -> go ws
            | exception Refute m -> Refuted m
            | exception Abort _ -> go ws)
      in
      go (witnesses ())
    in
    match walk check_ret_prove 0L 0xFFFF_FFFFL with
    | () ->
        if !returned then
          Certified
            (Certificate.v
               (Certificate.Reciprocal_div
                  {
                    divisor = claim.divisor;
                    signed = claim.signed;
                    rem = claim.op = `Rem;
                  })
               !transcript)
        else Unknown "no return path reached"
    | exception Refute m -> Refuted m
    | exception Abort m -> probe m
  end
