lib/dist/operand_dist.mli: Hppa_word Prng
