(** Double-word (64 / 64) divide and remainder millicode.

    Register-pair convention: X = (arg0:arg1), Y = (arg2:arg3), high
    word first. The public entries return their 64-bit result in
    (ret0:ret1); the shared cores additionally leave the other result
    dword in (arg0:arg1) (quotient in the ret pair, remainder in the
    arg pair).

    Division by zero raises [break] with
    {!Hppa_machine.Trap.divide_by_zero_code}; the signed entries raise
    [break] with {!Div_ext.overflow_break_code} on [-2^63 / -1]. *)

val source : Program.source

val entries : string list
(** [["divU64w"; "divI64w"; "remU64w"; "remI64w"]]. *)

val internal : string list
(** The shared cores [["w64$udivmod"; "w64$sdivmod"]] — reachable only
    through {!entries}, listed for convention specs. *)

val reference_unsigned : int64 -> int64 -> (int64 * int64) option
(** [(q, r)] with both operands taken as unsigned 64-bit values; [None]
    when the routine traps (division by zero). *)

val reference_signed : int64 -> int64 -> (int64 * int64) option
(** Truncating signed [(q, r)]; [None] when the routine traps (division
    by zero, or [-2^63 / -1]). *)
