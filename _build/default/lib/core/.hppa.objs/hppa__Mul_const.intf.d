lib/core/mul_const.mli: Chain Program
