(** Machine state and the reference interpreter (internal layer).

    This is the concrete state record plus the per-instruction interpreter
    that defines the architecture's semantics. External code should use the
    {!Machine} facade, which re-exports everything here with [t] abstract
    and adds the threaded-engine dispatch; the record is public in this
    interface so that {!Engine} can compile straight against it. *)

type control = Jump of int | Stop

type outcome = Halted | Trapped of Trap.t | Fuel_exhausted

(** Per-machine execution policy, fixed at creation; re-exported (with
    documentation) as {!Machine.Config}. *)
type config = {
  engine : bool;
  fuel : int;
  trace : (int -> int Insn.t -> unit) option;
  obs : Hppa_obs.Obs.Registry.t option;
  obs_labels : (string * string) list;
}

val default_config : config

(** Dispatch-path profiling counters, settled by {!Machine.run} and the
    engine driver; published as [hppa_machine_*] when a registry is
    attached. *)
type profile = {
  engine_runs : Hppa_obs.Obs.Counter.t;
  interp_runs : Hppa_obs.Obs.Counter.t;
  translations : Hppa_obs.Obs.Counter.t;
  translate_reuses : Hppa_obs.Obs.Counter.t;
  block_cycles : Hppa_obs.Obs.Counter.t;
  step_cycles : Hppa_obs.Obs.Counter.t;
}

type t = {
  prog : Program.resolved;
  regs : int32 array;
  mem : int32 array;
  delay : bool;
  mutable carry : bool;
  mutable v : bool;
  mutable nullify : bool;
  mutable pending : control option;
  mutable pc : int;
  mutable halted : bool;
  stats : Stats.t;
  mutable trace : (int -> int Insn.t -> unit) option;
  mutable icache : Icache.t option;
  mutable engine : (int -> outcome) option;
  mutable used_engine : bool;
  cfg : config;
  prof : profile;
}

val halt_sentinel : Hppa_word.Word.t

val create :
  ?mem_bytes:int -> ?delay_slots:bool -> ?config:config -> Program.resolved -> t
val delay_slots : t -> bool
val program : t -> Program.resolved
val reset : t -> unit
val get : t -> Reg.t -> Hppa_word.Word.t
val set : t -> Reg.t -> Hppa_word.Word.t -> unit
val carry : t -> bool
val v_bit : t -> bool
val pc : t -> int
val set_pc : t -> int -> unit
val load_word : t -> int32 -> (Hppa_word.Word.t, Trap.t) result
val store_word : t -> int32 -> Hppa_word.Word.t -> (unit, Trap.t) result
val stats : t -> Stats.t
val set_trace : t -> (int -> int Insn.t -> unit) option -> unit
val set_icache : t -> Icache.t option -> unit
val icache : t -> Icache.t option

val divide_step : t -> int32 -> int32 -> int32
(** One [DS] step against the machine's C/V state; exposed for the engine,
    which reuses the reference implementation verbatim. *)

val step : t -> (unit, Trap.t) result
val run : ?fuel:int -> t -> outcome
