(** Strength reduction (§2): "replacing multiplications by additions".

    Multiplications of the loop counter by a constant form arithmetic
    progressions, so each such [i * c] is replaced by a new variable
    initialised to [start * c] and bumped by [step * c] every iteration —
    the transformation whose {e limits} motivate the paper (induction
    variables used in non-subscript expressions, global counters and
    careless gotos defeat it, and divisions are never removable, so good
    multiply/divide routines still matter). *)

type reduced = {
  preheader : Loop_ir.stmt list;
      (** initialisations of the introduced induction temporaries *)
  loop : Loop_ir.t;  (** rewritten body plus the per-iteration bumps *)
  multiplies_removed : int;  (** static count *)
}

val reduce : ?width:Expr.width -> ?cheap_threshold:int -> Loop_ir.t -> reduced
(** Replaces every multiplication of the counter by a constant or by a
    loop-invariant variable (the FORTRAN rank situation §2 highlights).
    Variable multipliers cost one preheader multiply for the bump when the
    step is not 1. Raises [Invalid_argument] on an invalid loop.

    [width] (default {!Expr.W32}) is the width the loop will be compiled
    at: at W64 the init/bump folds happen in dword arithmetic, [Const64]
    multipliers of the counter reduce too, and the cheap test consults
    the pair-chain strategy ([w64_mul_const_chain]) whose per-step cost
    is two to three instructions. The W32 path is unchanged (and pinned
    byte-identical by the golden tests).

    [cheap_threshold] (default 0 = reduce everything) consults the
    kernel-strategy selector ({!Hppa_plan.Selector}) under the compiler
    context and leaves alone any constant multiplier whose inline chain
    scores at or below the threshold — the measured footnote below in
    code: a one-instruction chain (×2, ×3, ×5, powers of two...) is not
    worth an induction temporary and its per-iteration bump.

    Measured footnote (see the compiler tests): on this architecture the
    transformation only pays for {e variable} multipliers — a constant
    multiplier like the paper's 15 is already a two-instruction chain, so
    replacing it with an addition plus bump bookkeeping roughly breaks
    even. The cases §2 worries about (defeated reductions) cost ~16-20
    cycles per iteration through the millicode. *)

val eval_reduced :
  ?fuel:int -> reduced -> init:(string * int32) list -> (string * int32) list
(** Reference execution of the transformed program; introduced temporaries
    are dropped from the result so it is directly comparable with
    {!Loop_ir.eval} on the original. *)

val eval_reduced64 :
  ?fuel:int -> reduced -> init:(string * int64) list -> (string * int64) list
(** The double-word counterpart, comparable with {!Loop_ir.eval64} on
    the original loop. *)
