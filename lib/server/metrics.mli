(** Request metrics: counters and latency histograms on {!Hppa_obs}.

    A [Metrics.t] is a thin view over an observability registry: it
    owns the request/error counters ([hppa_serve_requests_total],
    [hppa_serve_errors_total]), the aggregate latency histogram
    ([hppa_serve_latency_us]) and one per-verb latency histogram
    ([hppa_serve_verb_latency_us{verb=...}], created on first use).
    The [METRICS] scrape, the [STATS] payload and the shutdown dump all
    read the same registry cells, so they can never disagree.

    Latencies go into power-of-two microsecond buckets, so percentiles
    are bucket upper bounds — coarse but allocation-free and
    mergeable. *)

type t

val create : ?registry:Hppa_obs.Obs.Registry.t -> unit -> t
(** Registers the instruments in [registry] (a fresh private registry
    when omitted). *)

val registry : t -> Hppa_obs.Obs.Registry.t
(** The registry the instruments live in — snapshot it to scrape. *)

val reset : t -> unit

val record : ?verb:string -> t -> error:bool -> us:float -> unit
(** Count one request with its handling latency in microseconds.
    [?verb] additionally records into that verb's labelled histogram. *)

val requests : t -> int
val errors : t -> int

val percentile_us : t -> float -> float
(** [percentile_us t 0.99]: upper bound (in microseconds) of the bucket
    containing that quantile of the aggregate histogram; 0 when nothing
    was recorded. The argument is a fraction in [0, 1]. *)

val render : t -> string
(** ["requests=... errors=... p50_us=... p99_us=..."] — the metrics part
    of the [STATS] payload. *)

val pp_dump : Format.formatter -> t -> unit
(** Multi-line human dump (shutdown report): counters plus the non-empty
    histogram buckets. *)
