lib/dist/gibson.mli:
