(** A minimal counted-loop IR for the strength-reduction study (§2).

    [for (i = start; i < stop; i += step) body] with a straight-line body
    of assignments. The interpreter gives the reference semantics that
    {!Strength.reduce} must preserve. *)

type stmt = Assign of string * Expr.t

type t = {
  counter : string;
  start : int32;
  stop : int32;  (** exclusive, signed comparison *)
  step : int32;  (** must be positive *)
  body : stmt list;
}

val validate : t -> (unit, string) result
(** Rejects non-positive steps and bodies that assign the counter. *)

val eval :
  ?fuel:int -> t -> init:(string * int32) list -> (string * int32) list
(** Run the loop; returns the final environment (all assigned variables
    and the counter). Raises [Invalid_argument] on an invalid loop or if
    [fuel] iterations (default 1_000_000) are exceeded. *)

val eval64 :
  ?fuel:int -> t -> init:(string * int64) list -> (string * int64) list
(** Double-word (W64) reference semantics: body expressions evaluate
    through {!Expr.eval64}. The counter is stepped in 32-bit wrap-around
    arithmetic (its bounds and step are single words, matching the
    compiled loop's single-register counter) and appears in the
    environment sign-extended. *)

val dynamic_mul_div : t -> int * int
(** (multiplies, divides) executed dynamically: static counts times the
    trip count. *)

val trip_count : t -> int
val pp : Format.formatter -> t -> unit
