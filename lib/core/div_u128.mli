(** 128/64 unsigned divide millicode ([divU128by64]).

    Register-pair convention one level up from [divU64]: the 128-bit
    dividend X arrives as two dwords — high in (arg0:arg1), low in
    (arg2:arg3) — and the 64-bit divisor Y in (ret0:ret1). The quotient
    dword returns in (ret0:ret1) and the remainder dword in
    (arg0:arg1).

    Knuth's algorithm D with 32-bit limbs and a two-limb divisor:
    normalization by nlz of the divisor's high limb, then two 64/32
    estimate-and-correct steps (each one [divU64] estimate, the
    refinement loop, and a 96-bit multiply-subtract — shared as the
    internal routine [w64$divlstep]).

    [Y = 0] raises [break] with
    {!Hppa_machine.Trap.divide_by_zero_code}; a high dword [>= Y] — a
    quotient that cannot fit one dword — raises [break] with
    {!Div_ext.overflow_break_code}. *)

val source : Program.source

val entries : string list
(** [["divU128by64"]]. *)

val internal : string list
(** [["w64$divlstep"]] — the estimate-and-correct step, reachable only
    through the entry, listed for convention specs. *)

val reference : Hppa_word.U128.t -> int64 -> (int64 * int64) option
(** [(q, r)] with the divisor taken as an unsigned 64-bit value; [None]
    when the routine traps (division by zero, or [x.hi >= y]
    unsigned). Computed with {!Hppa_word.U128.divmod_64}. *)
