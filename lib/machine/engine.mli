(** Closure-threaded execution engine (internal layer).

    Compiles a machine's resolved program once into specialized closures
    chained as basic-block superblocks, and returns a run function that
    is observationally identical to {!Cpu.run} — same registers, PSW
    C/V, memory, traps, PC and {!Stats} totals — on the modes it
    supports. {!Machine.run} selects it transparently and falls back to
    the reference interpreter otherwise. *)

val make : Cpu.t -> int -> Cpu.outcome
(** [make cpu] translates [cpu]'s program; [make cpu fuel] then runs
    from [cpu.pc] until halt, trap, or [fuel] instructions (negative
    fuel = unlimited, as in {!Cpu.run}), writing all architectural state
    back into [cpu]. The translation is reusable: keep the partial
    application and call it once per run.

    Caller contract (checked by {!Machine.run}): the machine is in the
    default branch model (no delay slots), has no trace hook or icache
    attached, is not halted, has no pending transfer, and [cpu.pc] is
    inside the program image. *)
