(* hppa-run: assemble a Precision assembly file and execute an entry point.

   Example:
     hppa-run prog.s --entry divu --arg 100 --arg 7
     hppa-run prog.s --millicode --entry f --arg 42 --stats
     hppa-run prog.s --millicode --trace-json trace.jsonl --metrics *)

module Word = Hppa_word.Word
module Machine = Hppa_machine.Machine
module Obs = Hppa_obs.Obs

let emit_image prog path =
  match Image.to_bytes prog with
  | Error msg ->
      Printf.eprintf "emit: %s\n" msg;
      2
  | Ok data ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_bytes oc data);
      Printf.printf "wrote %d bytes to %s\n" (Bytes.length data) path;
      0

(* Keep the newest 64k instruction events; enough for any millicode call
   and bounded for runaway programs. *)
let trace_capacity = 65536

(* --plan "mul 625": selector table plus an autotune pass — every
   candidate measured on the engine over the paper's Figure 5 operand
   mix, gated on never losing to the general millicode fallback. *)
let run_plan spec =
  match Hppa_plan.Strategy.request_of_string spec with
  | Error msg ->
      Printf.eprintf "hppa-run --plan: %s\n" msg;
      2
  | Ok req -> (
      let workload =
        Hppa_plan.Autotune.Figure5 { samples = 64; seed = 0xF00DL }
      in
      match Hppa_plan.Autotune.tune workload req with
      | Error msg ->
          Printf.eprintf "hppa-run --plan: %s\n" msg;
          2
      | Ok report ->
          Format.printf "%a@." Hppa_plan.Autotune.pp_report report;
          if report.Hppa_plan.Autotune.gate_ok then 0 else 1)

let run_file file entry args link_millicode dump stats trace trace_json metrics
    emit no_engine =
  let text = In_channel.with_open_text file In_channel.input_all in
  match Asm.parse text with
  | Error msg ->
      Printf.eprintf "%s: %s\n" file msg;
      2
  | Ok src -> (
      let src =
        if link_millicode then Program.concat [ src; Hppa.Millicode.source ]
        else src
      in
      match Program.resolve src with
      | Error msg ->
          Printf.eprintf "%s: %s\n" file msg;
          2
      | Ok prog when emit <> None ->
          emit_image prog (Option.get emit)
      | Ok prog ->
          if dump then Format.printf "%a@." Program.pp_resolved prog;
          let registry = Obs.Registry.create () in
          let tracer =
            if trace_json <> None then Some (Obs.Trace.create ~capacity:trace_capacity)
            else None
          in
          let trace_hook =
            if trace || tracer <> None then
              Some
                (fun pc insn ->
                  if trace then
                    Format.eprintf "%6d: %a@." pc (Insn.pp Format.pp_print_int)
                      insn;
                  match tracer with
                  | Some tr ->
                      Obs.Trace.emit tr "insn"
                        [
                          ("pc", Obs.Trace.Int pc);
                          ("mnemonic", Obs.Trace.Str (Insn.mnemonic insn));
                        ]
                  | None -> ())
            else None
          in
          let config =
            {
              Machine.Config.default with
              engine = not no_engine;
              trace = trace_hook;
              obs = Some registry;
            }
          in
          let mach = Machine.create ~config prog in
          let args = List.map (fun s -> Word.of_int64 (Int64.of_string s)) args in
          let outcome = Machine.call mach entry ~args in
          let code =
            match outcome with
            | Machine.Halted ->
                Format.printf "ret0 = %ld (0x%lx)@." (Machine.get mach Reg.ret0)
                  (Machine.get mach Reg.ret0);
                Format.printf "ret1 = %ld (0x%lx)@." (Machine.get mach Reg.ret1)
                  (Machine.get mach Reg.ret1);
                0
            | Machine.Trapped t ->
                Format.printf "trap at pc %d: %a@." (Machine.pc mach)
                  Hppa_machine.Trap.pp t;
                1
            | Machine.Fuel_exhausted ->
                Format.printf "out of fuel@.";
                1
          in
          (match (tracer, trace_json) with
          | Some tr, Some path ->
              Obs.Trace.emit tr "run"
                [
                  ( "outcome",
                    Obs.Trace.Str
                      (match outcome with
                      | Machine.Halted -> "halted"
                      | Machine.Trapped _ -> "trapped"
                      | Machine.Fuel_exhausted -> "fuel_exhausted") );
                  ("cycles",
                   Obs.Trace.Int (Hppa_machine.Stats.cycles (Machine.stats mach)));
                  ("used_engine", Obs.Trace.Bool (Machine.used_engine mach));
                  ("dropped", Obs.Trace.Int (Obs.Trace.dropped tr));
                ];
              Out_channel.with_open_text path (fun oc ->
                  Obs.Trace.write_jsonl tr oc)
          | _ -> ());
          if stats then begin
            Format.printf "%a@." Hppa_machine.Stats.pp (Machine.stats mach);
            Format.printf "used_engine = %b@." (Machine.used_engine mach)
          end;
          if metrics then
            print_string (Obs.Export.prometheus (Obs.Registry.snapshot registry));
          code)

let run file plan entry args link_millicode dump stats trace trace_json
    metrics emit no_engine =
  match (plan, file) with
  | Some spec, _ -> run_plan spec
  | None, Some file ->
      run_file file entry args link_millicode dump stats trace trace_json
        metrics emit no_engine
  | None, None ->
      Printf.eprintf "hppa-run: FILE.s (or --plan \"REQ\") required\n";
      2

open Cmdliner

let file = Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.s")

let plan =
  Arg.(value & opt (some string) None & info [ "p"; "plan" ] ~docv:"REQ"
         ~doc:"Instead of running a file, print the kernel-strategy \
               selection for request $(docv) (e.g. \"mul 625\", \"divu x\", \
               or a double-word request like \"w64mulu x\", \"w64divi x\") \
               and autotune every candidate on the simulator; exits 1 if \
               the chosen plan measures slower than the millicode fallback.")

let entry =
  Arg.(value & opt string "main" & info [ "e"; "entry" ] ~docv:"LABEL"
         ~doc:"Entry point label.")

let args =
  Arg.(value & opt_all string [] & info [ "a"; "arg" ] ~docv:"INT"
         ~doc:"Argument (repeatable, up to 4), loaded into arg0..arg3.")

let millicode =
  Arg.(value & flag & info [ "m"; "millicode" ]
         ~doc:"Link the multiply/divide millicode library into the image.")

let dump = Arg.(value & flag & info [ "d"; "dump" ] ~doc:"Print the resolved program.")
let stats = Arg.(value & flag & info [ "s"; "stats" ] ~doc:"Print execution statistics.")
let trace = Arg.(value & flag & info [ "t"; "trace" ] ~doc:"Trace executed instructions.")

let trace_json =
  Arg.(value & opt (some string) None & info [ "trace-json" ] ~docv:"PATH"
         ~doc:"Write a JSONL event trace of the run (one object per executed \
               instruction, newest 65536 kept) to $(docv). Tracing forces the \
               reference-interpreter path.")

let metrics =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"After the run, print the machine's observability registry in \
               Prometheus text format.")

let emit =
  Arg.(value & opt (some string) None & info [ "emit" ] ~docv:"IMAGE"
         ~doc:"Encode to a binary image instead of running.")

let no_engine =
  Arg.(value & flag & info [ "no-engine" ]
         ~doc:"Disable the threaded-code engine; always interpret \
               instruction by instruction.")

let cmd =
  Cmd.v
    (Cmd.info "hppa-run" ~doc:"Assemble and run HP Precision assembly on the simulator")
    Term.(const run $ file $ plan $ entry $ args $ millicode $ dump $ stats
          $ trace $ trace_json $ metrics $ emit $ no_engine)

let () = exit (Cmd.eval' cmd)
