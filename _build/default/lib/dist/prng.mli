(** Deterministic pseudo-random numbers (splitmix64).

    All workloads in the reproduction draw from this generator so that
    every table and figure is bit-for-bit reproducible; nothing uses the
    OCaml [Random] module or wall-clock seeding. *)

type t

val create : int64 -> t
(** Seeded generator; equal seeds give equal streams. *)

val copy : t -> t
val next64 : t -> int64
val word : t -> Hppa_word.Word.t
(** Uniform 32-bit word. *)

val int_range : t -> int -> int -> int
(** [int_range g lo hi]: uniform in [lo .. hi] inclusive. *)

val float01 : t -> float
(** Uniform in [0, 1). *)

val bool : t -> p:float -> bool
(** True with probability [p]. *)
