examples/array_addressing.ml: Expr Format Hppa Hppa_compiler Hppa_machine Hppa_word Lower Program Reg
