lib/core/chain_search.ml: Array Chain Hashtbl Int List Option Stdlib
