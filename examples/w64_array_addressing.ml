(* 64-bit array addressing: the section 2 motivation at double width.

     a = base + (i * COLS + j) * SIZE;

   where [base] is a 64-bit address and the element stride can exceed a
   word. Compiled at Expr.W64 every value lives in a register pair,
   constant multiplies become carry-propagating shift-and-add chains
   over dwords, and the strength-reduction pass rewrites the counter
   multiply into a running pair addition — exactly the W32 story, one
   width up.

   Run with:  dune exec examples/w64_array_addressing.exe *)

module Machine = Hppa_machine.Machine
open Hppa_compiler

let cols = 20L (* columns per row *)
let size = 24L (* sizeof(element) *)
let base = 0x2_0000_0040L (* array base: needs more than 32 bits *)

(* Read the dword result convention: high half in ret0, low in ret1. *)
let result_pair mach =
  Int64.logor
    (Int64.shift_left (Int64.of_int32 (Machine.get mach Reg.ret0)) 32)
    (Int64.logand (Int64.of_int32 (Machine.get mach Reg.ret1)) 0xFFFFFFFFL)

let pair x = [ Hppa_w64.hi32 x; Hppa_w64.lo32 x ]

let () =
  Format.printf "64-bit strides: %Ld columns x %Ld bytes, base 0x%Lx@.@." cols
    size base;

  (* The address expression, lowered at W64. Both multiplies are by
     constants, so they stay inline as pair chains. *)
  let addr =
    Expr.Add
      ( Var "base",
        Mul (Add (Mul (Var "i", Const64 cols), Const 3l), Const64 size) )
  in
  let unit_ =
    Lower.compile ~width:Expr.W64 ~entry:"addr64" ~params:[ "base"; "i" ] addr
  in
  Format.printf
    "addr64: %d inline pair-chain multiplies, %d millicode calls@."
    unit_.inline_multiplies unit_.millicode_calls;
  let prog =
    Program.resolve_exn (Program.concat [ unit_.source; Hppa.Millicode.source ])
  in
  let mach = Machine.create prog in
  let i = 123_456_789L in
  (match
     Machine.call_cycles mach "addr64" ~args:(pair base @ pair i)
   with
  | Machine.Halted, cycles ->
      let got = result_pair mach in
      let env = function "base" -> base | _ -> i in
      let want = Expr.eval64 ~env addr in
      Format.printf "addr64(base, %Ld) = 0x%Lx (%d cycles)%s@.@." i got cycles
        (if Int64.equal got want then "" else "  MISMATCH")
  | (Machine.Trapped _ | Machine.Fuel_exhausted), _ ->
      Format.printf "addr64 failed@.@.");

  (* Strength reduction at W64: the counter multiply by a row stride
     that does not even fit a word (each row spans a little over 4 GiB)
     has no inline chain — unreduced, every iteration calls the mulI128
     millicode. The pass rewrites it into a pair addition. *)
  let stride = 0x1_0000_0018L in
  let loop =
    Loop_ir.
      {
        counter = "i";
        start = 0l;
        stop = 1000l;
        step = 1l;
        body =
          [
            Assign
              ("a", Expr.Add (Var "a", Expr.Mul (Var "i", Const64 stride)));
          ];
      }
  in
  Format.printf "row-offset loop:@.%a@.@." Loop_ir.pp loop;
  let reduced = Strength.reduce ~width:Expr.W64 loop in
  Format.printf "after W64 strength reduction (%d multiply removed):@.%a@.@."
    reduced.multiplies_removed Loop_ir.pp reduced.loop;
  let before = Loop_ir.eval64 loop ~init:[ ("a", 0L) ] in
  let after = Strength.eval_reduced64 reduced ~init:[ ("a", 0L) ] in
  Format.printf "a = %Ld before, %Ld after (%s)@.@." (List.assoc "a" before)
    (List.assoc "a" after)
    (if Int64.equal (List.assoc "a" before) (List.assoc "a" after) then
       "semantics preserved"
     else "BUG");

  (* Both versions compiled at W64 and raced on the simulator. *)
  let run l entry compile =
    let prog = compile l in
    let mach = Machine.create prog in
    match Machine.call_cycles mach entry ~args:[] with
    | Machine.Halted, c -> (result_pair mach, c)
    | (Machine.Trapped _ | Machine.Fuel_exhausted), _ -> failwith entry
  in
  let v1, c1 =
    run loop "k" (fun l ->
        Lower_loop.compile_and_link ~width:Expr.W64 ~entry:"k" ~inputs:[]
          ~result:"a" l)
  in
  let v2, c2 =
    run reduced "k" (fun r ->
        let u =
          Lower_loop.compile_reduced ~width:Expr.W64 ~entry:"k" ~inputs:[]
            ~result:"a" r
        in
        Program.resolve_exn (Program.concat [ u.source; Hppa.Millicode.source ]))
  in
  assert (Int64.equal v1 v2);
  Format.printf
    "1000 iterations on the simulator: %6d -> %6d cycles (%.2fx)@." c1 c2
    (float_of_int c1 /. float_of_int c2)
