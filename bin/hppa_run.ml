(* hppa-run: assemble a Precision assembly file and execute an entry point.

   Example:
     hppa-run prog.s --entry divu --arg 100 --arg 7
     hppa-run prog.s --millicode --entry f --arg 42 --stats *)

module Word = Hppa_word.Word
module Machine = Hppa_machine.Machine

let emit_image prog path =
  match Image.to_bytes prog with
  | Error msg ->
      Printf.eprintf "emit: %s\n" msg;
      2
  | Ok data ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_bytes oc data);
      Printf.printf "wrote %d bytes to %s\n" (Bytes.length data) path;
      0

let run file entry args link_millicode dump stats trace emit no_engine =
  let text = In_channel.with_open_text file In_channel.input_all in
  match Asm.parse text with
  | Error msg ->
      Printf.eprintf "%s: %s\n" file msg;
      2
  | Ok src -> (
      let src =
        if link_millicode then Program.concat [ src; Hppa.Millicode.source ]
        else src
      in
      match Program.resolve src with
      | Error msg ->
          Printf.eprintf "%s: %s\n" file msg;
          2
      | Ok prog when emit <> None ->
          emit_image prog (Option.get emit)
      | Ok prog ->
          if dump then Format.printf "%a@." Program.pp_resolved prog;
          let mach = Machine.create prog in
          Machine.set_engine mach (not no_engine);
          if trace then
            Machine.set_trace mach
              (Some
                 (fun pc insn ->
                   Format.eprintf "%6d: %a@." pc (Insn.pp Format.pp_print_int)
                     insn));
          let args = List.map (fun s -> Word.of_int64 (Int64.of_string s)) args in
          let outcome = Machine.call mach entry ~args in
          let code =
            match outcome with
            | Machine.Halted ->
                Format.printf "ret0 = %ld (0x%lx)@." (Machine.get mach Reg.ret0)
                  (Machine.get mach Reg.ret0);
                Format.printf "ret1 = %ld (0x%lx)@." (Machine.get mach Reg.ret1)
                  (Machine.get mach Reg.ret1);
                0
            | Machine.Trapped t ->
                Format.printf "trap at pc %d: %a@." (Machine.pc mach)
                  Hppa_machine.Trap.pp t;
                1
            | Machine.Fuel_exhausted ->
                Format.printf "out of fuel@.";
                1
          in
          if stats then begin
            Format.printf "%a@." Hppa_machine.Stats.pp (Machine.stats mach);
            Format.printf "used_engine = %b@." (Machine.used_engine mach)
          end;
          code)

open Cmdliner

let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.s")

let entry =
  Arg.(value & opt string "main" & info [ "e"; "entry" ] ~docv:"LABEL"
         ~doc:"Entry point label.")

let args =
  Arg.(value & opt_all string [] & info [ "a"; "arg" ] ~docv:"INT"
         ~doc:"Argument (repeatable, up to 4), loaded into arg0..arg3.")

let millicode =
  Arg.(value & flag & info [ "m"; "millicode" ]
         ~doc:"Link the multiply/divide millicode library into the image.")

let dump = Arg.(value & flag & info [ "d"; "dump" ] ~doc:"Print the resolved program.")
let stats = Arg.(value & flag & info [ "s"; "stats" ] ~doc:"Print execution statistics.")
let trace = Arg.(value & flag & info [ "t"; "trace" ] ~doc:"Trace executed instructions.")

let emit =
  Arg.(value & opt (some string) None & info [ "emit" ] ~docv:"IMAGE"
         ~doc:"Encode to a binary image instead of running.")

let no_engine =
  Arg.(value & flag & info [ "no-engine" ]
         ~doc:"Disable the threaded-code engine; always interpret \
               instruction by instruction.")

let cmd =
  Cmd.v
    (Cmd.info "hppa-run" ~doc:"Assemble and run HP Precision assembly on the simulator")
    Term.(const run $ file $ entry $ args $ millicode $ dump $ stats $ trace
          $ emit $ no_engine)

let () = exit (Cmd.eval' cmd)
