(** Control-flow graphs over resolved Precision programs.

    The graph is built without executing the program. Nodes are
    {e execution roles} of instruction addresses, not bare addresses: in
    delay-slot mode the instruction after a taken branch executes {e as
    that branch's slot} (and then control transfers), while the same
    address reached by fall-through continues sequentially — two nodes,
    so the dataflow passes never mix the two paths. [BL] call sites get a
    synthetic {!node.Summary} node carrying the callee's declared effect,
    which keeps the per-routine analyses intraprocedural while still
    modelling what a millicode-to-millicode call reads, defines and
    clobbers.

    Indirect control transfers:
    - [BV r0(rp)] / [BV r0(mrp)] are procedure returns ({!edge.Ret});
    - any other [BV] is an unresolvable indirect branch, reported as a
      {!Findings.Structure} finding by the driver;
    - [BLR x t] is the §6 vectored case table: its successors are the
      [blr_slots] two-instruction slots following the branch. The bound
      over-approximates the dispatched range (the dispatch register is
      not analyzed), which is sound for the must- and may-analyses built
      on top.

    One flow-insensitive refinement: the guaranteed-trap idiom
    [LDIL k,r; ADDO r,r,r0] with [k + k] overflowing signed — how both
    [mulo] and the [MIN_INT] multiply plan force an overflow trap — gets
    a {!edge.Trap} successor instead of falling through, provided
    nothing can jump between the pair. Without this cut the dead code
    after a trap stub pollutes every must-analysis meeting it. *)

type mode = Simple | Delay_slot

type options = {
  mode : mode;
  blr_slots : int;
      (** how many two-instruction case-table slots a [BLR] may reach;
          16 covers a nibble dispatch, the millicode library needs
          [Div_small.threshold] = 20 *)
}

val default : options
(** [{ mode = Simple; blr_slots = 16 }] *)

val delay : options
(** [{ mode = Delay_slot; blr_slots = 16 }] *)

(** Calling-convention summary of a routine, used both to model [BL]
    calls to it and to check its own body (see {!Convention}). *)
type spec = {
  name : string;
  args : Reg.t list;  (** defined at entry; read by any call to it *)
  results : Reg.t list;  (** defined on every return path *)
  clobbers : Reg.t list;
      (** registers it may leave with arbitrary contents (a superset of
          [results]); everything else must be preserved *)
}

val scratch : Reg.t list
(** The millicode scratch set: [arg0]..[arg3], [ret0], [ret1],
    [t1]..[t5], [mrp]. *)

val default_spec : string -> spec
(** Two arguments, one result, scratch clobbers. *)

type dest =
  | Addrs of int list  (** continue at one of these addresses *)
  | Call of int  (** continue through the call summary of the [BL] here *)
  | Exit  (** procedure return *)

type node =
  | Insn of int  (** the instruction at this address, sequential role *)
  | Slot of int * dest  (** the same instruction executing as the delay
                            slot of a taken branch, then [dest] *)
  | Summary of int  (** effect of the call made by the [BL] at this
                        address *)
  | Tail of int * int  (** [(site, callee)]: a taken branch at [site]
                           whose target is a {e declared} entry (one with
                           a provided spec) is a tail call — modelled by
                           the callee's summary followed by {!edge.Ret},
                           keeping each analysis inside one routine. Only
                           routines named in [specs] qualify; branches to
                           undeclared labels are walked into. *)

type edge =
  | Step of node
  | Ret  (** return to the caller *)
  | Trap  (** [BREAK] *)
  | Off_image  (** control leaves the program image (a [Bad_pc] trap) *)
  | Indirect  (** unresolvable indirect branch *)

type t

val make : ?specs:spec list -> options -> Program.resolved -> t
val options : t -> options
val program : t -> Program.resolved

val insn : t -> int -> int Insn.t
val addr_of : node -> int option
(** The instruction address a node executes ([None] for summaries). *)

val spec_at : t -> int -> spec
(** The spec of the routine whose entry is at this address — from the
    provided [specs] if its name matches a label there, otherwise
    {!default_spec} of the label (or of ["<anon>"]). *)

val succs : t -> node -> edge list

val reads : t -> node -> Reg.t list
(** Registers consumed: the instruction's {!Insn.reads_distinct}, or for
    a summary the callee's [args] plus the link register (the callee
    returns through it). *)

val defines : t -> node -> Reg.t list
(** Registers definitely written ([r0] excluded): the instruction's
    target, or a summary's [results]. *)

val unspecifies : t -> node -> Reg.t list
(** Registers whose contents become unknown: a summary's
    [clobbers - results]. Empty for real instructions. *)

val reachable : t -> entries:int list -> node list
(** Depth-first discovery from [Insn] nodes at the given addresses. *)

(** Basic blocks: maximal single-entry straight-line node runs of the
    reachable subgraph. *)
type block = { id : int; nodes : node list; succ : int list; exits : edge list }

val blocks : t -> entries:int list -> block list
val pp_node : t -> Format.formatter -> node -> unit
val pp_blocks : t -> Format.formatter -> block list -> unit
