(* Tests for the extended (64-bit) multiply and the 64/32 divide, plus the
   millicode register-preservation convention the compiler relies on. *)

module Word = Hppa_word.Word
module Machine = Hppa_machine.Machine
module Trap = Hppa_machine.Trap
open Util
open Hppa

let mach = lazy (Millicode.machine ())

let wide_product entry x y =
  let m = Lazy.force mach in
  match Machine.call m entry ~args:[ x; y ] with
  | Machine.Halted -> Some (Machine.get m Reg.ret1, Machine.get m Reg.ret0)
  | Machine.Trapped _ | Machine.Fuel_exhausted -> None

let edge =
  [
    0l; 1l; -1l; 2l; -2l; 3l; 0x7fffl; 0x8000l; 0xffffl; 0x10000l; 0x10001l;
    0x7fffffffl; 0x80000000l; 0x80000001l; 0xfffffffel; 0xffffffffl;
    0x55555555l; 0xAAAAAAAAl;
  ]

let test_mulu64_edges () =
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          match wide_product "mulU64" x y with
          | None -> Alcotest.failf "mulU64 %lx %lx failed" x y
          | Some (hi, lo) ->
              let hi', lo' = Mul_ext.reference_unsigned x y in
              if not (Word.equal hi hi' && Word.equal lo lo') then
                Alcotest.failf "mulU64 %lx * %lx = %lx:%lx want %lx:%lx" x y hi
                  lo hi' lo')
        edge)
    edge

let test_muli64_edges () =
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          match wide_product "mulI64" x y with
          | None -> Alcotest.failf "mulI64 %lx %lx failed" x y
          | Some (hi, lo) ->
              let hi', lo' = Mul_ext.reference_signed x y in
              if not (Word.equal hi hi' && Word.equal lo lo') then
                Alcotest.failf "mulI64 %ld * %ld = %lx:%lx want %lx:%lx" x y hi
                  lo hi' lo')
        edge)
    edge

let prop_mulu64 =
  QCheck.Test.make ~name:"mulU64 = full unsigned product" ~count:2000
    (QCheck.pair arb_word arb_word) (fun (x, y) ->
      wide_product "mulU64" x y = Some (Mul_ext.reference_unsigned x y))

let prop_muli64 =
  QCheck.Test.make ~name:"mulI64 = full signed product" ~count:2000
    (QCheck.pair arb_word arb_word) (fun (x, y) ->
      wide_product "mulI64" x y = Some (Mul_ext.reference_signed x y))

let test_mul64_cost_band () =
  (* Four half-word standard multiplies plus recombination: well under two
     general 32-bit multiplies of large operands. *)
  let m = Lazy.force mach in
  let _, c = call_cycles_exn m "mulU64" [ 0xDEADBEEFl; 0xCAFEBABEl ] in
  Alcotest.(check bool) (Printf.sprintf "mulU64 cost %d in band" c) true
    (c >= 60 && c <= 280)

(* ------------------------------------------------------------------ *)
(* divU64                                                              *)

let divide64 hi lo y =
  let m = Lazy.force mach in
  match Machine.call m "divU64" ~args:[ hi; lo; y ] with
  | Machine.Halted -> Ok (Machine.get m Reg.ret0, Machine.get m Reg.ret1)
  | Machine.Trapped t -> Error t
  | Machine.Fuel_exhausted -> Error (Trap.Break 31)

let check_div64 hi lo y =
  match (divide64 hi lo y, Div_ext.reference ~hi ~lo y) with
  | Ok (q, r), Some (q', r') ->
      if Word.equal q q' && Word.equal r r' then Ok ()
      else
        Error
          (Printf.sprintf "divU64 %lx:%lx / %lx = (%lx, %lx) want (%lx, %lx)"
             hi lo y q r q' r')
  | Error (Trap.Break 1), None -> Ok ()
  | Error t, None -> Error ("wrong trap " ^ Trap.to_string t)
  | Error t, Some _ -> Error ("unexpected trap " ^ Trap.to_string t)
  | Ok _, None -> Error "missed the overflow break"

let test_divu64_edges () =
  List.iter
    (fun hi ->
      List.iter
        (fun lo ->
          List.iter
            (fun y ->
              match check_div64 hi lo y with
              | Ok () -> ()
              | Error msg -> Alcotest.fail msg)
            [ 1l; 2l; 3l; 7l; 0xffffl; 0x10000l; 0x80000000l; 0xffffffffl ])
        [ 0l; 1l; 0xffffl; 0xfffffffel ])
    [ 0l; 1l; 2l; 0x7fffl; 0x7fffffffl; 0xfffffffel ]

let test_divu64_requires_small_hi () =
  (match divide64 7l 0l 7l with
  | Error (Trap.Break 1) -> ()
  | _ -> Alcotest.fail "hi = divisor must break");
  match divide64 0l 5l 0l with
  | Error (Trap.Break 1) -> () (* zero divisor is covered by hi >= y *)
  | _ -> Alcotest.fail "zero divisor must break"

let prop_divu64 =
  QCheck.Test.make ~name:"divU64 divides 64-bit dividends" ~count:2000
    (QCheck.triple arb_word arb_word arb_word) (fun (hi, lo, y) ->
      (* Force validity half the time by reducing hi below y. *)
      let hi = if Word.lt_u hi y then hi else Word.sub y 1l in
      QCheck.assume (not (Word.equal y 0l));
      QCheck.assume (Word.lt_u hi y);
      match check_div64 hi lo y with Ok () -> true | Error _ -> false)

let prop_divu64_reconstruction =
  QCheck.Test.make ~name:"divU64: q*y + r reconstructs the dividend"
    ~count:1000 (QCheck.pair arb_word arb_word) (fun (lo, y) ->
      QCheck.assume (not (Word.equal y 0l));
      let hi = Word.shr_u y 1 in
      QCheck.assume (Word.lt_u hi y);
      match divide64 hi lo y with
      | Error _ -> false
      | Ok (q, r) ->
          let wide =
            Hppa_word.U128.add
              (Hppa_word.U128.mul_64_64 (Word.to_int64_u q) (Word.to_int64_u y))
              (Hppa_word.U128.of_int64 (Word.to_int64_u r))
          in
          Hppa_word.U128.to_int64 wide
          = Int64.logor
              (Int64.shift_left (Word.to_int64_u hi) 32)
              (Word.to_int64_u lo)
          && Word.lt_u r y)

(* divI64 *)

let divide64_signed hi lo y =
  let m = Lazy.force mach in
  match Machine.call m "divI64" ~args:[ hi; lo; y ] with
  | Machine.Halted -> Ok (Machine.get m Reg.ret0, Machine.get m Reg.ret1)
  | Machine.Trapped t -> Error t
  | Machine.Fuel_exhausted -> Error (Trap.Break 31)

let check_div64_signed hi lo y =
  match (divide64_signed hi lo y, Div_ext.reference_signed ~hi ~lo y) with
  | Ok (q, r), Some (q', r') ->
      if Word.equal q q' && Word.equal r r' then Ok ()
      else
        Error
          (Printf.sprintf "divI64 %lx:%lx / %ld = (%ld, %ld) want (%ld, %ld)"
             hi lo y q r q' r')
  | Error (Trap.Break 1), None when not (Word.equal y 0l) -> Ok ()
  | Error (Trap.Break 0), None when Word.equal y 0l -> Ok ()
  | Error t, None -> Error ("wrong trap " ^ Trap.to_string t)
  | Error t, Some _ -> Error ("unexpected trap " ^ Trap.to_string t)
  | Ok _, None -> Error "missed a break condition"

let test_divi64_edges () =
  List.iter
    (fun hi ->
      List.iter
        (fun lo ->
          List.iter
            (fun y ->
              match check_div64_signed hi lo y with
              | Ok () -> ()
              | Error msg -> Alcotest.fail msg)
            [ 0l; 1l; -1l; 2l; -2l; 7l; -7l; 0xffffl; Int32.max_int; Int32.min_int ])
        [ 0l; 1l; 0xffffffffl; 0x12345678l ])
    [ 0l; 1l; -1l; -2l; 2l; 0x7fffl; -0x8000l; Int32.min_int; Int32.max_int ]

let test_divi64_signs () =
  (* -100 / 7 = -14 rem -2, full sign matrix through the 64-bit path. *)
  List.iter
    (fun (hi, lo, y, q, r) ->
      match divide64_signed hi lo y with
      | Ok (q', r') ->
          Alcotest.check word "quotient" q q';
          Alcotest.check word "remainder" r r'
      | Error t -> Alcotest.failf "trap %s" (Trap.to_string t))
    [
      (-1l, -100l, 7l, -14l, -2l);
      (0l, 100l, -7l, -14l, 2l);
      (-1l, -100l, -7l, 14l, -2l);
      (0l, 100l, 7l, 14l, 2l);
    ]

let prop_divi64 =
  QCheck.Test.make ~name:"divI64 signed 64/32 division" ~count:2000
    (QCheck.triple arb_word arb_word arb_word) (fun (hi0, lo, y) ->
      (* Mix in-range and overflowing dividends. *)
      let hi =
        if Word.lt_u (Word.abs hi0) (Word.abs y) then hi0
        else Word.shr_s hi0 16
      in
      match check_div64_signed hi lo y with Ok () -> true | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* The register convention: millicode must preserve r3..r18.           *)

let test_millicode_preserves_compiler_registers () =
  let m = Lazy.force mach in
  let sentinels = List.init 16 (fun i -> (Reg.of_int (3 + i), Word.of_int (0x5a5a00 + i))) in
  List.iter
    (fun entry ->
      Machine.reset m;
      List.iter (fun (r, v) -> Machine.set m r v) sentinels;
      (* divU64 needs hi < divisor; the argument triple satisfies every
         entry's preconditions. The 128/64 divide takes six words — a
         dividend quad and a divisor pair in (ret0:ret1) — with the
         dividend's high dword below the divisor. *)
      let args =
        if String.equal entry "divU128by64" then [ 0l; 2l; 123456l; 7l; 1l; 5l ]
        else [ 2l; 123456l; 7l ]
      in
      (match Machine.call m entry ~args with
      | Machine.Halted -> ()
      | Machine.Trapped t ->
          Alcotest.failf "%s trapped: %s" entry (Trap.to_string t)
      | Machine.Fuel_exhausted -> Alcotest.failf "%s: fuel" entry);
      List.iter
        (fun (r, v) ->
          if not (Word.equal (Machine.get m r) v) then
            Alcotest.failf "%s clobbers %s" entry (Reg.name r))
        sentinels)
    (List.filter (fun e -> e <> "mulI" && e <> "muloI") Millicode.entries)

let suite =
  [
    ( "ext:unit",
      [
        Alcotest.test_case "mulU64 edges" `Quick test_mulu64_edges;
        Alcotest.test_case "mulI64 edges" `Quick test_muli64_edges;
        Alcotest.test_case "mul64 cost band" `Quick test_mul64_cost_band;
        Alcotest.test_case "divU64 edges" `Quick test_divu64_edges;
        Alcotest.test_case "divU64 overflow break" `Quick test_divu64_requires_small_hi;
        Alcotest.test_case "divI64 edges" `Quick test_divi64_edges;
        Alcotest.test_case "divI64 signs" `Quick test_divi64_signs;
        Alcotest.test_case "millicode preserves r3-r18" `Quick
          test_millicode_preserves_compiler_registers;
      ] );
    qsuite "ext:props"
      [
        prop_mulu64; prop_muli64; prop_divu64; prop_divu64_reconstruction;
        prop_divi64;
      ];
  ]
