module Word = Hppa_word.Word

type reduced = {
  preheader : Loop_ir.stmt list;
  loop : Loop_ir.t;
  multiplies_removed : int;
}

let temp_prefix = "$str"

(* What a reduced multiplication multiplies the counter by. A constant
   multiplier is held at the reduction width: 32-bit at W32 (so the W32
   folds stay byte-identical to the historical output), a full dword at
   W64 (where [Const 5] and [Const64 5L] multipliers share a temp). *)
type multiplier = Mconst of int32 | Mconst64 of int64 | Mvar of string

(* A constant multiplier whose selected inline chain is at or below the
   threshold is not worth an induction temporary. *)
let cheap_request ~cheap_threshold req chain_name =
  cheap_threshold > 0
  && (match
        Hppa_plan.Selector.choose ~ctx:(Hppa_plan.Strategy.compiler ()) req
      with
     | Ok choice ->
         choice.Hppa_plan.Selector.chosen.Hppa_plan.Strategy.name = chain_name
         && choice.Hppa_plan.Selector.cost.Hppa_plan.Strategy.score
            <= cheap_threshold
     | Error _ -> false)

let cheap_multiplier ~cheap_threshold c =
  cheap_request ~cheap_threshold
    (Hppa_plan.Strategy.mul_const c)
    "mul_const_chain"

let cheap_multiplier64 ~cheap_threshold c =
  cheap_request ~cheap_threshold
    (Hppa_plan.Strategy.w64_mul_const c)
    "w64_mul_const_chain"

let reduce ?(width = Expr.W32) ?(cheap_threshold = 0) (l : Loop_ir.t) =
  (match Loop_ir.validate l with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Strength.reduce: " ^ msg));
  let assigned =
    List.map (fun (Loop_ir.Assign (v, _)) -> v) l.body
  in
  (* A variable multiplier must be loop-invariant. *)
  let invariant v = v <> l.counter && not (List.mem v assigned) in
  let temps = ref [] (* (name, multiplier) newest first *) in
  let removed = ref 0 in
  let temp_for m =
    match List.find_opt (fun (_, m') -> m = m') !temps with
    | Some (name, _) -> name
    | None ->
        let name = Printf.sprintf "%s%d" temp_prefix (List.length !temps) in
        temps := (name, m) :: !temps;
        name
  in
  (* At W64 every constant multiplier is widened to a dword; the cheap
     test then consults the pair-chain strategy instead of the scalar
     one (pair steps cost two to three instructions each, so the
     break-even moves). *)
  let mconst c =
    match width with
    | Expr.W32 -> Mconst c
    | Expr.W64 -> Mconst64 (Int64.of_int32 c)
  in
  let cheap_const c =
    match width with
    | Expr.W32 -> cheap_multiplier ~cheap_threshold c
    | Expr.W64 -> cheap_multiplier64 ~cheap_threshold (Int64.of_int32 c)
  in
  let rec rewrite (e : Expr.t) : Expr.t =
    match e with
    | Mul (Var i, Const c) | Mul (Const c, Var i)
      when i = l.counter && not (cheap_const c) ->
        incr removed;
        Var (temp_for (mconst c))
    | Mul (Var i, Const64 c) | Mul (Const64 c, Var i)
      when width = Expr.W64 && i = l.counter
           && not (cheap_multiplier64 ~cheap_threshold c) ->
        incr removed;
        Var (temp_for (Mconst64 c))
    | Mul (Var a, Var b)
      when (a = l.counter && invariant b) || (b = l.counter && invariant a) ->
        let n = if a = l.counter then b else a in
        incr removed;
        Var (temp_for (Mvar n))
    | Var _ | Const _ | Const64 _ -> e
    | Add (a, b) -> Add (rewrite a, rewrite b)
    | Sub (a, b) -> Sub (rewrite a, rewrite b)
    | Mul (a, b) -> Mul (rewrite a, rewrite b)
    | Div (a, b) -> Div (rewrite a, rewrite b)
    | Rem (a, b) -> Rem (rewrite a, rewrite b)
    | Neg a -> Neg (rewrite a)
  in
  let body =
    List.map (fun (Loop_ir.Assign (v, e)) -> Loop_ir.Assign (v, rewrite e)) l.body
  in
  let temps = List.rev !temps in
  (* Folds happen at the reduction width: single-word [Word.mul_lo] for
     W32 (byte-identical to the historical lowering), dword arithmetic
     for W64 (the counter's start/step sign-extend). *)
  let init_of = function
    | Mconst c -> Expr.Const (Word.mul_lo l.start c)
    | Mconst64 c ->
        Expr.Const64 (Int64.mul (Int64.of_int32 l.start) c)
    | Mvar n -> Expr.Mul (Const l.start, Var n)
  in
  let bump_of = function
    | Mconst c -> Expr.Const (Word.mul_lo l.step c)
    | Mconst64 c -> Expr.Const64 (Int64.mul (Int64.of_int32 l.step) c)
    | Mvar n when Word.equal l.step 1l -> Expr.Var n
    | Mvar n -> Expr.Mul (Const l.step, Var n)
  in
  let preheader =
    List.map (fun (name, m) -> Loop_ir.Assign (name, init_of m)) temps
  in
  let bumps =
    List.map
      (fun (name, m) -> Loop_ir.Assign (name, Expr.Add (Var name, bump_of m)))
      temps
  in
  {
    preheader;
    loop = { l with body = body @ bumps };
    multiplies_removed = !removed;
  }

let eval_reduced ?fuel r ~init =
  let env0 = Hashtbl.create 16 in
  List.iter (fun (v, x) -> Hashtbl.replace env0 v x) init;
  let lookup v =
    match Hashtbl.find_opt env0 v with
    | Some x -> x
    | None -> invalid_arg ("Strength.eval_reduced: unbound variable " ^ v)
  in
  List.iter
    (fun (Loop_ir.Assign (v, e)) -> Hashtbl.replace env0 v (Expr.eval ~env:lookup e))
    r.preheader;
  let init' = Hashtbl.fold (fun v x acc -> (v, x) :: acc) env0 [] in
  Loop_ir.eval ?fuel r.loop ~init:init'
  |> List.filter (fun (v, _) ->
         not (String.length v >= 4 && String.sub v 0 4 = temp_prefix))

let eval_reduced64 ?fuel r ~init =
  let env0 = Hashtbl.create 16 in
  List.iter (fun (v, x) -> Hashtbl.replace env0 v x) init;
  let lookup v =
    match Hashtbl.find_opt env0 v with
    | Some x -> x
    | None -> invalid_arg ("Strength.eval_reduced64: unbound variable " ^ v)
  in
  List.iter
    (fun (Loop_ir.Assign (v, e)) ->
      Hashtbl.replace env0 v (Expr.eval64 ~env:lookup e))
    r.preheader;
  let init' = Hashtbl.fold (fun v x acc -> (v, x) :: acc) env0 [] in
  Loop_ir.eval64 ?fuel r.loop ~init:init'
  |> List.filter (fun (v, _) ->
         not (String.length v >= 4 && String.sub v 0 4 = temp_prefix))
