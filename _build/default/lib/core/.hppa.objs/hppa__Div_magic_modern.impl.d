lib/core/div_magic_modern.ml: Array Chain Chain_rules Hppa_word Int64
