(** Addition chains over the Precision-architecture step rules (§5).

    A chain for the multiplier [n] is the sequence

    {v a.(0) = 0,  a.(1) = 1,  a.(2), ..., a.(r+1) = n v}

    where every element from index 2 on is produced by one single-cycle
    instruction from earlier elements:

    {v a_i = a_j + a_k          ADD
      a_i = (a_j << m) + a_k   SHmADD, m in 1..3
      a_i = a_j - a_k          SUB
      a_i = a_j << m           shift-left immediate (ZDEP) v}

    Multiplying a register by [n] executes the chain with element 1 replaced
    by the multiplicand. The chain {e length} is the number of steps, i.e.
    the instruction count of the generated multiply. *)

type step =
  | Add of int * int  (** [Add (j, k)]: element j + element k *)
  | Shadd of int * int * int  (** [Shadd (m, j, k)]: (elt j << m) + elt k *)
  | Sub of int * int  (** [Sub (j, k)]: element j - element k *)
  | Shl of int * int  (** [Shl (j, m)]: element j << m, m in 1..31 *)

type t = step list
(** Steps in order; step [i] (0-based) defines element [i + 2]. *)

val length : t -> int

val values : t -> (int array, string) result
(** Element values including the two implicit leading elements; fails if a
    step references a not-yet-defined element, uses a bad shift amount, or
    overflows the OCaml int range. *)

val values_exn : t -> int array

val target : t -> (int, string) result
(** The last element — the constant the chain multiplies by. The empty chain
    has target 1. *)

val target_exn : t -> int

val is_monotonic : t -> bool
(** §5 "Overflow": true when element values are strictly increasing from
    index 1 on. *)

val is_overflow_safe : t -> bool
(** Monotonic and built only from ADD/SHmADD steps (plus the implicit final
    negation handled by the code generator), so the [,o] completers detect
    exactly the overflows of the full multiplication. *)

val eval_word : t -> Hppa_word.Word.t -> Hppa_word.Word.t
(** Execute the chain on a concrete multiplicand with 32-bit wrap-around —
    the reference semantics of the generated code (non-trapping variant).
    Raises [Invalid_argument] on an invalid chain. *)

val pp : Format.formatter -> t -> unit
(** Renders as in the paper, e.g. ["a2 = 4*a1 + a1"]. *)
