lib/word/u128.mli: Format
