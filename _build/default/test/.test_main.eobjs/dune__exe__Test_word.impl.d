test/test_word.ml: Alcotest Hppa_word Int64 List Printf QCheck Util
