module U128 = Hppa_word.U128

(* 128/64 unsigned divide over register pairs, completing the W64
   family: X is the 128-bit dividend — high dword in (arg0:arg1), low
   dword in (arg2:arg3) — and Y the 64-bit divisor in (ret0:ret1). The
   quotient dword returns in (ret0:ret1) and the remainder dword in
   (arg0:arg1).

   Preconditions mirror [divU64] one level up: Y = 0 raises BREAK 0
   (divide by zero), and a high dword >= Y — a quotient that cannot fit
   one dword — raises BREAK 1 (Div_ext.overflow_break_code).

   The algorithm is Knuth's algorithm D with 32-bit limbs and a two-limb
   divisor (Hacker's Delight divlu), i.e. normalization plus two 64/32
   estimate-and-correct steps:

   - yh = 0: the divisor is one limb, so the "steps" are two chained
     [divU64] calls exactly as in the paper's extended divide —
     q_hi, r = (x2:x1) / yl then q_lo, r' = (r:x0) / yl. The overflow
     check already established x3 = 0 and x2 < yl, so both calls meet
     divU64's hi < divisor precondition.
   - yh != 0: normalize left by s = nlz(yh) — the divisor becomes
     (vn1:vn0) with vn1's top bit set, and the dividend (u3:u2:u1:u0)
     still fits 128 bits because X < Y * 2^64 implies X * 2^s < 2^128.
     Each quotient limb then comes from one [w64$divlstep] call: a
     [divU64] estimate of the chunk's top two limbs by vn1 (or the
     qhat = 2^32 - 1 special case when they collide), the classic
     refinement loop against vn0 — which for a two-limb divisor makes
     qhat exact, so no add-back pass is needed — and a 96-bit
     multiply-subtract producing the next remainder chunk. The final
     remainder is denormalized right by s.

   Frame layout (mul_ext.ml 0..35, mul_w64.ml 40..103, div_w64.ml
   104..175): the entry uses bytes 176..235, the step 240..275. *)

let step_source =
  let b = Builder.create ~prefix:"w64$divlstep" () in
  let l s = "w64$divlstep$" ^ s in
  let sp = Reg.sp in
  (* One estimate-and-correct step. In: chunk top limbs (arg0:arg1) =
     (nh:nl) with nh <= vn1, next limb arg2 = unext, arg3 = vn1,
     ret0 = vn0. Out: ret0 = exact quotient limb qhat, (arg0:arg1) =
     remainder (nh:nl:unext) - qhat * (vn1:vn0), which fits one
     dword. *)
  Builder.label b "w64$divlstep";
  Builder.insns b
    [
      Emit.stw Reg.mrp 240l sp;
      Emit.stw Reg.arg2 244l sp; (* unext *)
      Emit.stw Reg.arg3 248l sp; (* vn1 *)
      Emit.stw Reg.ret0 252l sp; (* vn0 *)
      Emit.stw Reg.arg1 256l sp; (* nl *)
      (* Estimate qhat, rhat from (nh:nl) / vn1. *)
      Emit.comb Cond.Eq Reg.arg0 Reg.arg3 (l "top");
      Emit.copy Reg.arg3 Reg.arg2;
      Emit.bl "divU64" Reg.mrp;
      Emit.stw Reg.ret0 260l sp; (* qhat *)
      Emit.stw Reg.ret1 264l sp; (* rhat (< vn1, so < 2^32) *)
      Emit.stw Reg.r0 268l sp; (* rhat bit 32 *)
      Emit.b (l "refine");
    ];
  (* nh = vn1: divU64's hi < divisor precondition fails; use the
     saturated estimate qhat = 2^32 - 1, rhat = nl + vn1 (33 bits, the
     carry tracked separately). *)
  Builder.label b (l "top");
  Builder.insns b (Emit.ldi (-1l) Reg.t2);
  Builder.insns b
    [
      Emit.stw Reg.t2 260l sp;
      Emit.add Reg.arg1 Reg.arg3 Reg.t3;
      Emit.addc Reg.r0 Reg.r0 Reg.t4;
      Emit.stw Reg.t3 264l sp;
      Emit.stw Reg.t4 268l sp;
    ];
  (* Refinement: while rhat < 2^32 and qhat * vn0 > (rhat:unext),
     decrement qhat and add vn1 back into rhat. At most two
     iterations; with a two-limb divisor the refined qhat is exact. *)
  Builder.label b (l "refine");
  Builder.insns b
    [
      Emit.ldw 268l sp Reg.t2;
      Emit.comib Cond.Neq 0l Reg.t2 (l "msub"); (* rhat >= 2^32: done *)
      Emit.ldw 260l sp Reg.arg0;
      Emit.ldw 252l sp Reg.arg1;
      Emit.bl "mulU64" Reg.mrp; (* qhat * vn0 = (ret1:ret0) *)
      Emit.ldw 264l sp Reg.t2; (* rhat *)
      Emit.ldw 244l sp Reg.t3; (* unext *)
      Emit.comb Cond.Ult Reg.ret1 Reg.t2 (l "msub");
      Emit.comb Cond.Neq Reg.ret1 Reg.t2 (l "dec");
      Emit.comb Cond.Ule Reg.ret0 Reg.t3 (l "msub");
    ];
  Builder.label b (l "dec");
  Builder.insns b
    [
      Emit.ldw 260l sp Reg.t4;
      Emit.ldo (-1l) Reg.t4 Reg.t4;
      Emit.stw Reg.t4 260l sp;
      Emit.ldw 248l sp Reg.t4; (* vn1 *)
      Emit.add Reg.t2 Reg.t4 Reg.t2;
      Emit.addc Reg.r0 Reg.r0 Reg.t4;
      Emit.stw Reg.t2 264l sp;
      Emit.stw Reg.t4 268l sp;
      Emit.b (l "refine");
    ];
  (* Multiply-subtract: remainder = (nh:nl:unext) - qhat * (vn1:vn0).
     qhat is exact, so the 96-bit difference fits one dword and the top
     limb need not be formed. *)
  Builder.label b (l "msub");
  Builder.insns b
    [
      Emit.ldw 260l sp Reg.arg0;
      Emit.ldw 252l sp Reg.arg1;
      Emit.bl "mulU64" Reg.mrp; (* qhat * vn0 *)
      Emit.stw Reg.ret0 272l sp; (* p0 *)
      Emit.stw Reg.ret1 252l sp; (* carry limb (vn0 slot is dead) *)
      Emit.ldw 260l sp Reg.arg0;
      Emit.ldw 248l sp Reg.arg1;
      Emit.bl "mulU64" Reg.mrp; (* qhat * vn1 *)
      Emit.ldw 252l sp Reg.t2;
      Emit.add Reg.ret0 Reg.t2 Reg.t3; (* product mid limb *)
      Emit.ldw 244l sp Reg.t1; (* unext *)
      Emit.ldw 272l sp Reg.t2; (* p0 *)
      Emit.sub Reg.t1 Reg.t2 Reg.arg1; (* remainder lo, borrow out *)
      Emit.ldw 256l sp Reg.t1; (* nl *)
      Emit.subb Reg.t1 Reg.t3 Reg.arg0; (* remainder hi *)
      Emit.ldw 260l sp Reg.ret0;
      Emit.ldw 240l sp Reg.mrp;
      Emit.mret;
    ];
  Builder.to_source b

let entry_source =
  let b = Builder.create ~prefix:"divU128by64" () in
  let l s = "divU128by64$" ^ s in
  let sp = Reg.sp in
  Builder.label b "divU128by64";
  Builder.insns b
    [
      Emit.stw Reg.mrp 176l sp;
      (* Y = 0 traps; a high dword >= Y means the quotient cannot fit
         one dword and traps with the extended-divide overflow code. *)
      Emit.or_ Reg.ret0 Reg.ret1 Reg.t1;
      Emit.comib Cond.Eq 0l Reg.t1 (l "zero");
      Emit.comb Cond.Ult Reg.arg0 Reg.ret0 (l "ok");
      Emit.comb Cond.Neq Reg.arg0 Reg.ret0 (l "ovfl");
      Emit.comb Cond.Uge Reg.arg1 Reg.ret1 (l "ovfl");
    ];
  Builder.label b (l "ok");
  Builder.insns b
    [
      Emit.stw Reg.arg3 180l sp; (* x0 *)
      Emit.stw Reg.ret1 184l sp; (* yl *)
      Emit.comib Cond.Neq 0l Reg.ret0 (l "big");
      (* -- yh = 0: two chained 64/32 divides (x3 = 0, x2 < yl) ------- *)
      Emit.copy Reg.arg1 Reg.arg0; (* (x2:x1) / yl *)
      Emit.copy Reg.arg2 Reg.arg1;
      Emit.copy Reg.ret1 Reg.arg2;
      Emit.bl "divU64" Reg.mrp;
      Emit.stw Reg.ret0 188l sp; (* q_hi *)
      Emit.copy Reg.ret1 Reg.arg0; (* (r:x0) / yl *)
      Emit.ldw 180l sp Reg.arg1;
      Emit.ldw 184l sp Reg.arg2;
      Emit.bl "divU64" Reg.mrp;
      Emit.copy Reg.ret1 Reg.arg1; (* remainder = (0:r') *)
      Emit.copy Reg.r0 Reg.arg0;
      Emit.copy Reg.ret0 Reg.ret1; (* quotient = (q_hi:q_lo) *)
      Emit.ldw 188l sp Reg.ret0;
      Emit.ldw 176l sp Reg.mrp;
      Emit.mret;
    ];
  Builder.label b (l "zero");
  Builder.insn b (Emit.break Hppa_machine.Trap.divide_by_zero_code);
  Builder.label b (l "ovfl");
  Builder.insn b (Emit.break Div_ext.overflow_break_code);
  (* -- yh != 0: normalize, two estimate-and-correct steps ----------- *)
  Builder.label b (l "big");
  Builder.insns b
    [
      Emit.copy Reg.r0 Reg.t1; (* s = 0 *)
      Emit.copy Reg.ret0 Reg.t2; (* (vn1:vn0) = Y *)
      Emit.copy Reg.ret1 Reg.t3;
    ];
  (* Shift divisor and dividend up together until vn1's top bit is set;
     X < Y * 2^64 keeps the 4-limb dividend inside 128 bits the whole
     way, so no bits are lost. *)
  Builder.label b (l "norm");
  Builder.insns b
    [
      Emit.comb Cond.Lt Reg.t2 Reg.r0 (l "normed");
      Emit.shd Reg.t2 Reg.t3 31 Reg.t2;
      Emit.shl Reg.t3 1 Reg.t3;
      Emit.shd Reg.arg0 Reg.arg1 31 Reg.arg0;
      Emit.shd Reg.arg1 Reg.arg2 31 Reg.arg1;
      Emit.shd Reg.arg2 Reg.arg3 31 Reg.arg2;
      Emit.shl Reg.arg3 1 Reg.arg3;
      Emit.ldo 1l Reg.t1 Reg.t1;
      Emit.b (l "norm");
    ];
  Builder.label b (l "normed");
  Builder.insns b
    [
      Emit.stw Reg.t1 192l sp; (* s *)
      Emit.stw Reg.t2 196l sp; (* vn1 *)
      Emit.stw Reg.t3 200l sp; (* vn0 *)
      Emit.stw Reg.arg3 204l sp; (* u0 *)
      (* Step 1: (u3:u2:u1) by (vn1:vn0) — the chunk is already in
         (arg0:arg1:arg2). *)
      Emit.copy Reg.t2 Reg.arg3;
      Emit.copy Reg.t3 Reg.ret0;
      Emit.bl "w64$divlstep" Reg.mrp;
      Emit.stw Reg.ret0 208l sp; (* q1 *)
      (* Step 2: (r1h:r1l:u0) by (vn1:vn0). *)
      Emit.ldw 204l sp Reg.arg2;
      Emit.ldw 196l sp Reg.arg3;
      Emit.ldw 200l sp Reg.ret0;
      Emit.bl "w64$divlstep" Reg.mrp;
      Emit.copy Reg.ret0 Reg.ret1; (* quotient = (q1:q0) *)
      Emit.ldw 208l sp Reg.ret0;
      (* Denormalize the remainder pair right by s. *)
      Emit.ldw 192l sp Reg.t1;
      Emit.comib Cond.Eq 0l Reg.t1 (l "done");
    ];
  Builder.label b (l "denorm");
  Builder.insns b
    [
      Emit.shd Reg.arg0 Reg.arg1 1 Reg.arg1;
      Emit.shr_u Reg.arg0 1 Reg.arg0;
      Emit.addib Cond.Neq (-1l) Reg.t1 (l "denorm");
    ];
  Builder.label b (l "done");
  Builder.insns b [ Emit.ldw 176l sp Reg.mrp; Emit.mret ];
  Builder.to_source b

let source = Program.concat [ entry_source; step_source ]
let entries = [ "divU128by64" ]
let internal = [ "w64$divlstep" ]

(* OCaml reference: [None] = the routine traps (Y = 0, or a quotient
   that cannot fit one dword). The dword operands are unsigned. *)
let reference (x : U128.t) y =
  if Int64.equal y 0L then None
  else if Int64.unsigned_compare x.U128.hi y >= 0 then None
  else
    let q, r = U128.divmod_64 x y in
    Some (U128.to_int64 q, r)
