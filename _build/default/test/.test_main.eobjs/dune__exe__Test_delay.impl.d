test/test_delay.ml: Alcotest Asm Delay Hppa Hppa_dist Hppa_machine Hppa_word Lazy List Millicode Program Reg Util
